//! Synthetic production-like workload generation.
//!
//! We do not have Google's production traces, so this module generates
//! synthetic pools calibrated to the statistics the paper publishes:
//!
//! * most VMs are short-lived but most core-hours belong to long-lived VMs
//!   (Fig. 1: 88 % of VMs live under an hour, 98 % of resources are consumed
//!   by VMs living an hour or more);
//! * per-category lifetime distributions are multi-modal (Fig. 2), so a
//!   category's *average* lifetime is a poor predictor but its
//!   *distribution* is informative;
//! * pools differ in size, utilisation and workload mix (§6.1 notes the 24
//!   evaluated pools vary significantly);
//! * workloads drift over time (§6.6), which we model with a slow
//!   multiplicative shift of category lifetime scales.
//!
//! Lifetimes are drawn from per-category log-normal mixtures; arrivals are a
//! Poisson process whose rate is chosen so the pool reaches a target
//! steady-state utilisation.

use crate::trace::Trace;
use lava_core::events::{TraceEvent, TraceEventKind};
use lava_core::host::HostSpec;
use lava_core::pool::PoolId;
use lava_core::resources::Resources;
use lava_core::source::EventSource;
use lava_core::time::{Duration, SimTime};
use lava_core::vm::{ProvisioningModel, VmFamily, VmId, VmPriority, VmSpec};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One mode of a category's lifetime mixture: a log-normal component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeMode {
    /// Mixture weight (normalised internally).
    pub weight: f64,
    /// Median lifetime of this mode, in hours.
    pub median_hours: f64,
    /// Log10-domain standard deviation of this mode.
    pub sigma_log10: f64,
}

/// A VM category: a group of VMs with a common shape distribution and
/// lifetime mixture (the generator's analogue of the paper's "VM category" /
/// "metadata id" features).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmCategory {
    /// The categorical id exposed to the model features.
    pub category_id: u32,
    /// Relative arrival weight of this category.
    pub arrival_weight: f64,
    /// Lifetime mixture components.
    pub lifetime_modes: Vec<LifetimeMode>,
    /// Candidate shapes (cores, memory GiB) drawn uniformly.
    pub shapes: Vec<(u64, u64)>,
    /// Probability that a VM of this category attaches local SSD.
    pub ssd_probability: f64,
    /// Whether VMs of this category are spot instances.
    pub spot: bool,
}

impl VmCategory {
    /// Mean CPU·seconds consumed by one VM of this category (used to size
    /// the arrival rate).
    fn mean_core_seconds(&self) -> f64 {
        let mean_cores = self.shapes.iter().map(|(c, _)| *c as f64).sum::<f64>()
            / self.shapes.len().max(1) as f64;
        let total_weight: f64 = self.lifetime_modes.iter().map(|m| m.weight).sum();
        let mean_secs: f64 = self
            .lifetime_modes
            .iter()
            .map(|m| {
                // Mean of a log-normal with median m and sigma in log10:
                // exp(mu + s^2/2) where mu = ln(median), s = sigma*ln(10).
                let s = m.sigma_log10 * std::f64::consts::LN_10;
                let mean = (m.median_hours * 3600.0) * (s * s / 2.0).exp();
                m.weight / total_weight * mean
            })
            .sum();
        mean_cores * mean_secs
    }
}

/// Configuration of one synthetic pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Pool identifier.
    pub pool_id: PoolId,
    /// Number of hosts.
    pub hosts: usize,
    /// Host shape.
    pub host_cores: u64,
    /// Host memory in GiB.
    pub host_memory_gib: u64,
    /// Host local SSD in GiB.
    pub host_ssd_gib: u64,
    /// VM family served by this pool.
    pub family: VmFamily,
    /// Target steady-state CPU utilisation in `[0, 1]`.
    pub target_utilization: f64,
    /// Trace duration (excluding warm-up).
    pub duration: Duration,
    /// Workload mix.
    pub categories: Vec<VmCategory>,
    /// Multiplicative drift of lifetime medians per week of trace time
    /// (1.0 = no drift); models §6.6's workload shift.
    pub weekly_drift: f64,
    /// Fraction of the steady-state standing population materialised at the
    /// start of the trace (the pool is not born empty; the paper's traces
    /// start from a running production pool).
    pub initial_fill_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PoolConfig {
    /// The host spec for this pool.
    pub fn host_spec(&self) -> HostSpec {
        HostSpec::new(Resources::new(
            self.host_cores * 1000,
            self.host_memory_gib * 1024,
            self.host_ssd_gib,
        ))
    }

    /// Total CPU capacity of the pool, in milli-cores.
    pub fn total_cpu_milli(&self) -> u64 {
        self.host_cores * 1000 * self.hosts as u64
    }
}

/// The default workload mix, calibrated so that ~88 % of VMs live under an
/// hour while long-lived VMs dominate core-hours (Fig. 1).
///
/// The absolute scale of the long tail is compressed relative to a
/// production fleet (the longest category has a median of ~10 days rather
/// than months) so that host churn — the phenomenon lifetime-aware
/// scheduling exploits — happens within the 1–2 simulated weeks the
/// experiments run for, instead of the 7-week production traces the paper
/// uses. The *shape* (most VMs short, long VMs holding most core-hours,
/// bi-modal per-category distributions) is preserved; see DESIGN.md.
pub fn default_categories() -> Vec<VmCategory> {
    vec![
        // Short batch / CI jobs: minutes. The bulk of arrivals.
        VmCategory {
            category_id: 1,
            arrival_weight: 70.0,
            lifetime_modes: vec![
                LifetimeMode {
                    weight: 0.8,
                    median_hours: 0.12,
                    sigma_log10: 0.25,
                },
                LifetimeMode {
                    weight: 0.2,
                    median_hours: 0.4,
                    sigma_log10: 0.2,
                },
            ],
            shapes: vec![(2, 8), (4, 16)],
            ssd_probability: 0.05,
            spot: true,
        },
        // Interactive dev/test VMs: tens of minutes, occasionally a day
        // (bi-modal, hard to predict — the Fig. 2 example).
        VmCategory {
            category_id: 2,
            arrival_weight: 19.0,
            lifetime_modes: vec![
                LifetimeMode {
                    weight: 0.75,
                    median_hours: 0.5,
                    sigma_log10: 0.3,
                },
                LifetimeMode {
                    weight: 0.25,
                    median_hours: 20.0,
                    sigma_log10: 0.35,
                },
            ],
            shapes: vec![(2, 8), (4, 16), (8, 32)],
            ssd_probability: 0.1,
            spot: false,
        },
        // Batch analytics: hours.
        VmCategory {
            category_id: 3,
            arrival_weight: 7.0,
            lifetime_modes: vec![
                LifetimeMode {
                    weight: 0.7,
                    median_hours: 4.0,
                    sigma_log10: 0.3,
                },
                LifetimeMode {
                    weight: 0.3,
                    median_hours: 16.0,
                    sigma_log10: 0.3,
                },
            ],
            shapes: vec![(8, 32), (16, 64)],
            ssd_probability: 0.3,
            spot: false,
        },
        // Services / web servers: days. Few arrivals, most core-hours.
        VmCategory {
            category_id: 4,
            arrival_weight: 3.5,
            lifetime_modes: vec![
                LifetimeMode {
                    weight: 0.5,
                    median_hours: 40.0,
                    sigma_log10: 0.3,
                },
                LifetimeMode {
                    weight: 0.5,
                    median_hours: 110.0,
                    sigma_log10: 0.25,
                },
            ],
            shapes: vec![(4, 16), (8, 32), (16, 64)],
            ssd_probability: 0.2,
            spot: false,
        },
        // Databases / stateful services: the long tail (~1–2 weeks).
        VmCategory {
            category_id: 5,
            arrival_weight: 0.5,
            lifetime_modes: vec![LifetimeMode {
                weight: 1.0,
                median_hours: 250.0,
                sigma_log10: 0.2,
            }],
            shapes: vec![(16, 64), (32, 128)],
            ssd_probability: 0.6,
            spot: false,
        },
    ]
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            pool_id: PoolId(0),
            hosts: 120,
            host_cores: 64,
            host_memory_gib: 256,
            host_ssd_gib: 3000,
            family: VmFamily::C2,
            target_utilization: 0.75,
            duration: Duration::from_days(7),
            categories: default_categories(),
            weekly_drift: 1.0,
            initial_fill_fraction: 0.85,
            seed: 1,
        }
    }
}

impl PoolConfig {
    /// A small configuration for unit tests and smoke runs.
    pub fn small(seed: u64) -> PoolConfig {
        PoolConfig {
            hosts: 24,
            duration: Duration::from_days(2),
            seed,
            ..PoolConfig::default()
        }
    }

    /// The fleet of varied pools used for the Fig. 6-style sweep: pools of
    /// different sizes, utilisations and mixes (deterministic per index).
    pub fn fleet(count: usize) -> Vec<PoolConfig> {
        (0..count)
            .map(|i| {
                let mut categories = default_categories();
                // Vary the workload mix across pools: tilt between
                // short-dominated and service-dominated pools.
                let tilt = 0.6 + 0.8 * (i % 5) as f64 / 4.0;
                for c in &mut categories {
                    if c.category_id >= 4 {
                        c.arrival_weight *= tilt;
                    }
                }
                PoolConfig {
                    pool_id: PoolId(i as u32),
                    hosts: 60 + 30 * (i % 4),
                    host_cores: if i % 3 == 0 { 96 } else { 64 },
                    host_memory_gib: if i % 3 == 0 { 384 } else { 256 },
                    host_ssd_gib: 3000,
                    family: if i % 2 == 0 {
                        VmFamily::C2
                    } else {
                        VmFamily::E2
                    },
                    target_utilization: 0.70 + 0.04 * (i % 5) as f64,
                    duration: Duration::from_days(14),
                    categories,
                    weekly_drift: 1.0,
                    initial_fill_fraction: 0.85,
                    seed: 1000 + i as u64,
                }
            })
            .collect()
    }
}

/// Generates synthetic traces from a [`PoolConfig`].
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: PoolConfig,
}

impl WorkloadGenerator {
    /// Create a generator for a pool configuration.
    pub fn new(config: PoolConfig) -> WorkloadGenerator {
        WorkloadGenerator { config }
    }

    /// The configuration being generated.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// The Poisson arrival rate (VMs per second) that achieves the target
    /// utilisation in steady state.
    pub fn arrival_rate(&self) -> f64 {
        let total_weight: f64 = self
            .config
            .categories
            .iter()
            .map(|c| c.arrival_weight)
            .sum();
        let mean_core_seconds: f64 = self
            .config
            .categories
            .iter()
            .map(|c| c.arrival_weight / total_weight * c.mean_core_seconds())
            .sum();
        let target_cores =
            self.config.total_cpu_milli() as f64 / 1000.0 * self.config.target_utilization;
        if mean_core_seconds <= 0.0 {
            0.0
        } else {
            target_cores / mean_core_seconds
        }
    }

    fn sample_category<'a>(&'a self, rng: &mut ChaCha8Rng) -> &'a VmCategory {
        let total: f64 = self
            .config
            .categories
            .iter()
            .map(|c| c.arrival_weight)
            .sum();
        let mut draw = rng.gen_range(0.0..total);
        for c in &self.config.categories {
            if draw < c.arrival_weight {
                return c;
            }
            draw -= c.arrival_weight;
        }
        self.config
            .categories
            .last()
            .expect("pool config has at least one category")
    }

    fn sample_lifetime(
        &self,
        category: &VmCategory,
        at: SimTime,
        rng: &mut ChaCha8Rng,
    ) -> Duration {
        let total: f64 = category.lifetime_modes.iter().map(|m| m.weight).sum();
        let mut draw = rng.gen_range(0.0..total);
        let mut mode = category.lifetime_modes[0];
        for m in &category.lifetime_modes {
            if draw < m.weight {
                mode = *m;
                break;
            }
            draw -= m.weight;
        }
        // Workload drift: lifetime medians shift multiplicatively per week.
        let weeks = at.as_days() / 7.0;
        let drift = self.config.weekly_drift.powf(weeks);
        // Log-normal in the log10 domain via Box-Muller.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let log10_hours = (mode.median_hours * drift).log10() + mode.sigma_log10 * gauss;
        let hours = 10f64.powf(log10_hours.clamp(-3.0, 3.2));
        Duration::from_hours_f64(hours).max(Duration::from_secs(30))
    }

    fn sample_spec(&self, category: &VmCategory, rng: &mut ChaCha8Rng) -> VmSpec {
        let (cores, mem) = category.shapes[rng.gen_range(0..category.shapes.len())];
        let has_ssd = rng.gen_bool(category.ssd_probability);
        let ssd_gib = if has_ssd { 375 } else { 0 };
        VmSpec::builder(Resources::new(cores * 1000, mem * 1024, ssd_gib))
            .family(self.config.family)
            .zone(self.config.pool_id.0)
            .category(category.category_id)
            .metadata_id(category.category_id * 10 + rng.gen_range(0..3u32))
            .has_ssd(has_ssd)
            .provisioning(if category.spot {
                ProvisioningModel::Spot
            } else {
                ProvisioningModel::OnDemand
            })
            .priority(if category.spot {
                VmPriority::Preemptible
            } else {
                VmPriority::Production
            })
            .admission_bypass(category.category_id == 5)
            .build()
    }

    /// Sample one request-shaped VM at virtual time `at`: a category draw,
    /// then a spec and a (ground-truth) lifetime from that category. This
    /// is the hook the serving tier's open-loop arrival generators use to
    /// give their request streams the same workload mix, shapes and
    /// drifting lifetime distributions as the batch traces, without going
    /// through trace materialisation.
    pub fn sample_request_vm(&self, at: SimTime, rng: &mut ChaCha8Rng) -> (VmSpec, Duration) {
        let category = self.sample_category(rng);
        let lifetime = self.sample_lifetime(category, at, rng);
        let spec = self.sample_spec(category, rng);
        (spec, lifetime)
    }

    /// The standing population the pool would hold in steady state: VMs
    /// that were created before the trace window and are still running at
    /// its start. Their count per category follows Little's law
    /// (`λ_cat · E[lifetime]`); their *remaining* lifetime is sampled from
    /// the equilibrium residual-life distribution (length-biased lifetime,
    /// uniform age). They appear as creations in the first minutes of the
    /// trace, which is exactly the left-censored state the paper's warm-up
    /// phase reconstructs (Appendix F).
    fn standing_population(&self, rng: &mut ChaCha8Rng, next_id: &mut u64) -> Vec<TraceEvent> {
        let rate = self.arrival_rate();
        let total_weight: f64 = self
            .config
            .categories
            .iter()
            .map(|c| c.arrival_weight)
            .sum();
        let mut events = Vec::new();
        for category in &self.config.categories {
            let cat_rate = rate * category.arrival_weight / total_weight;
            // Mean lifetime of the category's mixture, in seconds.
            let mode_weight: f64 = category.lifetime_modes.iter().map(|m| m.weight).sum();
            let mean_lifetime: f64 = category
                .lifetime_modes
                .iter()
                .map(|m| {
                    let s = m.sigma_log10 * std::f64::consts::LN_10;
                    m.weight / mode_weight * (m.median_hours * 3600.0) * (s * s / 2.0).exp()
                })
                .sum();
            let expected_standing =
                cat_rate * mean_lifetime * self.config.initial_fill_fraction.clamp(0.0, 1.0);
            // Poisson sample of the standing count (normal approximation for
            // large means keeps this cheap and deterministic enough).
            let count = sample_poisson(expected_standing, rng);
            for _ in 0..count {
                // Length-biased mode choice, then length-biased log-normal
                // lifetime (log-normal with mean shifted by s²), then a
                // uniform age.
                let mode = pick_length_biased_mode(category, rng);
                let s = mode.sigma_log10 * std::f64::consts::LN_10;
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let ln_lifetime = (mode.median_hours * 3600.0).ln() + s * s + s * gauss;
                let lifetime_secs = ln_lifetime.exp().clamp(30.0, 5.0e7);
                let age = rng.gen_range(0.0..lifetime_secs);
                let remaining = (lifetime_secs - age).max(30.0);
                // Stagger the synthetic creations over the first 10 minutes
                // so event ordering stays deterministic but not degenerate.
                let at = SimTime(rng.gen_range(0..600));
                let spec = self.sample_spec(category, rng);
                let vm = VmId(*next_id);
                *next_id += 1;
                let remaining = Duration::from_secs_f64(remaining);
                events.push(TraceEvent::create(at, vm, spec, remaining));
                events.push(TraceEvent::exit(at + remaining, vm));
            }
        }
        events
    }

    /// Advance the Poisson arrival process by one arrival: draw the
    /// exponential inter-arrival gap and, if the clock stays inside the
    /// horizon, the arrival's category, lifetime and spec. Returns the
    /// `(create, exit)` event pair, or `None` once the clock crosses the
    /// horizon — in which case no further RNG draws are made, so the
    /// materialised and streaming paths consume the RNG identically.
    fn next_arrival(
        &self,
        rng: &mut ChaCha8Rng,
        clock: &mut f64,
        rate: f64,
        next_id: &mut u64,
    ) -> Option<(TraceEvent, TraceEvent)> {
        let horizon = self.config.duration.as_secs() as f64;
        // Exponential inter-arrival times.
        let u: f64 = rng.gen_range(1e-12..1.0);
        *clock += -u.ln() / rate.max(1e-12);
        if *clock >= horizon {
            return None;
        }
        let at = SimTime(*clock as u64);
        let category = self.sample_category(rng).clone();
        let lifetime = self.sample_lifetime(&category, at, rng);
        let spec = self.sample_spec(&category, rng);
        let vm = VmId(*next_id);
        *next_id += 1;
        Some((
            TraceEvent::create(at, vm, spec, lifetime),
            TraceEvent::exit(at + lifetime, vm),
        ))
    }

    /// Generate a trace covering `[0, duration)` (plus exits that may fall
    /// after the end of the arrival window).
    pub fn generate(&self) -> Trace {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let rate = self.arrival_rate();
        let mut next_id = 0u64;
        let mut events = self.standing_population(&mut rng, &mut next_id);
        let mut clock = 0.0f64;
        while let Some((create, exit)) = self.next_arrival(&mut rng, &mut clock, rate, &mut next_id)
        {
            events.push(create);
            events.push(exit);
        }
        Trace::new(self.config.pool_id, events)
    }

    /// Turn the generator into a lazy, pull-based [`StreamingWorkload`]
    /// emitting event-for-event the same stream as [`generate`]
    /// (see [`WorkloadGenerator::generate`]) for the same seed.
    pub fn stream(self) -> StreamingWorkload {
        StreamingWorkload::from_generator(self)
    }
}

/// A lazy, pull-based [`EventSource`] over the synthetic workload: the
/// streaming twin of [`WorkloadGenerator::generate`].
///
/// Instead of materialising the whole horizon as a `Vec<TraceEvent>`, the
/// source draws arrivals from the seeded distributions *on demand* and
/// keeps only what it cannot know yet: the exit events of VMs that have
/// been created but not yet retired, plus one look-ahead arrival. Memory
/// is therefore O(pending VMs) — proportional to the standing population
/// the pool can hold — and independent of the horizon length, which is
/// what makes multi-million-event runs feasible.
///
/// For the same [`PoolConfig`] (and in particular the same seed) the
/// emitted stream is **event-for-event identical** to the canonical order
/// of the materialised trace: both consume the RNG in the same sequence,
/// and the internal heap pops events in [`TraceEvent::sort_key`] order —
/// the exact order [`Trace::new`](crate::trace::Trace::new) sorts into.
/// This is property-tested in `tests/streaming_engine.rs`.
#[derive(Debug, Clone)]
pub struct StreamingWorkload {
    generator: WorkloadGenerator,
    rng: ChaCha8Rng,
    rate: f64,
    /// Arrival-process clock, in (fractional) seconds.
    clock: f64,
    next_id: u64,
    /// Buffered future events: pending exits of live VMs, the staggered
    /// standing-population events not yet replayed, and the look-ahead
    /// arrival. Pops in `sort_key` order.
    pending: BinaryHeap<Reverse<TraceEvent>>,
    /// Sort key of the most recently generated create. Every event the
    /// generator has *not* produced yet sorts strictly after it (arrival
    /// times are non-decreasing, ids increase, and lifetimes are ≥ 30 s),
    /// so heap entries at or below this frontier are safe to emit.
    frontier: Option<(SimTime, u8, VmId)>,
    arrivals_done: bool,
    last_create_time: SimTime,
    max_pending: usize,
}

impl StreamingWorkload {
    /// Create a streaming source for a pool configuration.
    pub fn new(config: PoolConfig) -> StreamingWorkload {
        WorkloadGenerator::new(config).stream()
    }

    fn from_generator(generator: WorkloadGenerator) -> StreamingWorkload {
        let mut rng = ChaCha8Rng::seed_from_u64(generator.config.seed);
        let rate = generator.arrival_rate();
        let mut next_id = 0u64;
        // The standing population is drawn eagerly (exactly as the
        // materialised generator does, keeping the RNG streams aligned);
        // it is O(pool size), not O(horizon).
        let standing = generator.standing_population(&mut rng, &mut next_id);
        let mut last_create_time = SimTime::ZERO;
        let mut pending = BinaryHeap::with_capacity(standing.len() + 2);
        for event in standing {
            if matches!(event.kind, TraceEventKind::Create { .. }) {
                last_create_time = last_create_time.max(event.time);
            }
            pending.push(Reverse(event));
        }
        let max_pending = pending.len();
        StreamingWorkload {
            generator,
            rng,
            rate,
            clock: 0.0,
            next_id,
            pending,
            frontier: None,
            arrivals_done: false,
            last_create_time,
            max_pending,
        }
    }

    /// The configuration being streamed.
    pub fn config(&self) -> &PoolConfig {
        &self.generator.config
    }

    /// High-water mark of the pending-event buffer — the source's peak
    /// memory footprint in events. Stays O(live VMs) regardless of the
    /// horizon (asserted in the memory-bound tests and the `sim_scale`
    /// bench).
    pub fn max_pending_len(&self) -> usize {
        self.max_pending
    }

    fn generate_one_arrival(&mut self) {
        let generator = &self.generator;
        match generator.next_arrival(&mut self.rng, &mut self.clock, self.rate, &mut self.next_id) {
            Some((create, exit)) => {
                self.frontier = Some(create.sort_key());
                self.last_create_time = self.last_create_time.max(create.time);
                self.pending.push(Reverse(exit));
                self.pending.push(Reverse(create));
                self.max_pending = self.max_pending.max(self.pending.len());
            }
            None => self.arrivals_done = true,
        }
    }

    /// Generate arrivals until the heap's minimum is safe to emit: every
    /// not-yet-generated event sorts strictly after the frontier, so the
    /// minimum may only be released once it is at or below it (or the
    /// arrival process has crossed the horizon).
    fn refill(&mut self) {
        while !self.arrivals_done {
            let safe = match (self.pending.peek(), self.frontier) {
                (Some(Reverse(min)), Some(frontier)) => min.sort_key() <= frontier,
                _ => false,
            };
            if safe {
                break;
            }
            self.generate_one_arrival();
        }
    }
}

impl EventSource for StreamingWorkload {
    fn next_event(&mut self) -> Option<TraceEvent> {
        self.refill();
        self.pending.pop().map(|Reverse(event)| event)
    }

    fn peek(&mut self) -> Option<&TraceEvent> {
        self.refill();
        self.pending.peek().map(|Reverse(event)| event)
    }

    fn last_arrival_time(&mut self) -> Option<SimTime> {
        if self.arrivals_done {
            Some(self.last_create_time)
        } else {
            None
        }
    }

    fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// Sample a Poisson random variate with the given mean. Uses Knuth's method
/// for small means and a clamped normal approximation for large ones.
fn sample_poisson(mean: f64, rng: &mut ChaCha8Rng) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0f64..1.0);
            if p <= limit {
                return k;
            }
            k += 1;
        }
    } else {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + mean.sqrt() * gauss).round().max(0.0) as u64
    }
}

/// Pick a lifetime mode with probability proportional to `weight × mean`
/// (length-biased across modes, as required for the standing population).
fn pick_length_biased_mode(category: &VmCategory, rng: &mut ChaCha8Rng) -> LifetimeMode {
    let biased_weight = |m: &LifetimeMode| {
        let s = m.sigma_log10 * std::f64::consts::LN_10;
        m.weight * m.median_hours * (s * s / 2.0).exp()
    };
    let total: f64 = category.lifetime_modes.iter().map(biased_weight).sum();
    let mut draw = rng.gen_range(0.0..total.max(1e-12));
    for m in &category.lifetime_modes {
        let w = biased_weight(m);
        if draw < w {
            return *m;
        }
        draw -= w;
    }
    *category
        .lifetime_modes
        .last()
        .expect("category has at least one lifetime mode")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_nonempty_sorted_trace() {
        let generator = WorkloadGenerator::new(PoolConfig::small(7));
        let trace = generator.generate();
        assert!(trace.vm_count() > 100, "only {} VMs", trace.vm_count());
        let times: Vec<_> = trace.events().iter().map(|e| e.sort_key()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "trace not sorted");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = WorkloadGenerator::new(PoolConfig::small(11)).generate();
        let b = WorkloadGenerator::new(PoolConfig::small(11)).generate();
        assert_eq!(a.events(), b.events());
        let c = WorkloadGenerator::new(PoolConfig::small(12)).generate();
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn lifetime_distribution_matches_paper_shape() {
        // Fig. 1: ~88 % of VMs live under 1 hour, but VMs living ≥ 1 hour
        // consume the overwhelming majority of core-hours. Measured over
        // fresh arrivals (the standing population at t≈0 is length-biased
        // by construction).
        let generator = WorkloadGenerator::new(PoolConfig {
            duration: Duration::from_days(4),
            initial_fill_fraction: 0.0,
            ..PoolConfig::default()
        });
        let trace = generator.generate();
        let obs = trace.observations();
        let total = obs.len() as f64;
        let short = obs
            .iter()
            .filter(|(_, l)| *l < Duration::from_hours(1))
            .count() as f64;
        let short_fraction = short / total;
        assert!(
            (0.75..0.95).contains(&short_fraction),
            "short fraction {short_fraction}"
        );

        let core_hours =
            |spec: &VmSpec, l: &Duration| spec.resources().cpu_milli as f64 / 1000.0 * l.as_hours();
        let total_core_hours: f64 = obs.iter().map(|(s, l)| core_hours(s, l)).sum();
        let long_core_hours: f64 = obs
            .iter()
            .filter(|(_, l)| *l >= Duration::from_hours(1))
            .map(|(s, l)| core_hours(s, l))
            .sum();
        let long_share = long_core_hours / total_core_hours;
        assert!(long_share > 0.9, "long-lived core-hour share {long_share}");
    }

    #[test]
    fn standing_population_brings_pool_near_target_utilization() {
        // With the standing population materialised, the trace-implied CPU
        // utilisation at mid-trace should be in the neighbourhood of the
        // target rather than near zero.
        let config = PoolConfig::default();
        let trace = WorkloadGenerator::new(config.clone()).generate();
        let mid = SimTime::ZERO + Duration::from_days(3);
        let util =
            crate::validation::trace_utilization(&trace, &[mid], config.total_cpu_milli())[0];
        assert!(
            (0.4..=1.0).contains(&util),
            "mid-trace utilisation {util} too far from target {}",
            config.target_utilization
        );
    }

    #[test]
    fn arrival_rate_scales_with_utilization() {
        let low = WorkloadGenerator::new(PoolConfig {
            target_utilization: 0.3,
            ..PoolConfig::default()
        });
        let high = WorkloadGenerator::new(PoolConfig {
            target_utilization: 0.9,
            ..PoolConfig::default()
        });
        assert!(high.arrival_rate() > low.arrival_rate() * 2.0);
    }

    #[test]
    fn fleet_produces_varied_pools() {
        let fleet = PoolConfig::fleet(24);
        assert_eq!(fleet.len(), 24);
        let sizes: std::collections::BTreeSet<_> = fleet.iter().map(|p| p.hosts).collect();
        assert!(sizes.len() > 1, "pools should vary in size");
        let ids: std::collections::BTreeSet<_> = fleet.iter().map(|p| p.pool_id).collect();
        assert_eq!(ids.len(), 24, "pool ids must be unique");
    }

    #[test]
    fn streaming_source_matches_materialized_generator() {
        let config = PoolConfig::small(21);
        let trace = WorkloadGenerator::new(config.clone()).generate();
        let mut source = StreamingWorkload::new(config);
        assert_eq!(source.last_arrival_time(), None, "arrivals still coming");
        let streamed: Vec<_> = std::iter::from_fn(|| source.next_event()).collect();
        assert_eq!(streamed, trace.events(), "streams diverged");
        assert_eq!(source.last_arrival_time(), Some(trace.last_arrival_time()));
        assert_eq!(source.pending_len(), 0);
        assert!(
            source.max_pending_len() < trace.events().len(),
            "pending buffer ({}) should stay below the full event count ({})",
            source.max_pending_len(),
            trace.events().len()
        );
    }

    #[test]
    fn streaming_peek_is_stable_and_non_consuming() {
        let mut source = StreamingWorkload::new(PoolConfig::small(22));
        let peeked = source.peek().cloned().expect("non-empty stream");
        assert_eq!(source.peek(), Some(&peeked), "peek must not consume");
        assert_eq!(source.next_event(), Some(peeked));
    }

    #[test]
    fn drift_shifts_lifetimes_over_time() {
        let config = PoolConfig {
            weekly_drift: 3.0,
            duration: Duration::from_days(14),
            target_utilization: 0.4,
            initial_fill_fraction: 0.0,
            ..PoolConfig::default()
        };
        let trace = WorkloadGenerator::new(config).generate();
        // Average log lifetime in the first vs last 3 days should increase.
        let mut early = Vec::new();
        let mut late = Vec::new();
        for e in trace.events() {
            if let lava_core::events::TraceEventKind::Create { lifetime, .. } = &e.kind {
                if e.time < SimTime::ZERO + Duration::from_days(3) {
                    early.push(lifetime.log10_secs());
                } else if e.time > SimTime::ZERO + Duration::from_days(11) {
                    late.push(lifetime.log10_secs());
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&late) > mean(&early) + 0.1);
    }
}
