//! Property tests: the compiled flat-GBDT engine is bit-identical to the
//! reference tree-walking engine on every input it can see.
//!
//! Randomised over ensemble shape (tree count, leaf budget, feature
//! count — including more features than [`FEATURE_COUNT`], which forces
//! the batch fallback), training data, full-length rows, short rows and
//! the `predict` / `predict_batch` pair. "Bit-identical" means exact
//! `f64::to_bits` equality, which is what lets `PredictorSpec::LearnedFast`
//! replay any `Learned` experiment without changing a single decision.

use lava_model::compiled::CompiledGbdt;
use lava_model::features::{FeatureRow, FEATURE_COUNT};
use lava_model::gbdt::{GbdtConfig, GbdtRegressor};
use proptest::prelude::*;

/// Deterministically generate a training set and fit both engines.
fn fit(
    num_rows: usize,
    num_features: usize,
    num_trees: usize,
    max_leaves: usize,
    seed: u64,
    constant_labels: bool,
) -> (GbdtRegressor, CompiledGbdt, Vec<Vec<f64>>) {
    // Cheap deterministic value stream (keeps the test independent of any
    // RNG crate details).
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut rows = Vec::with_capacity(num_rows);
    let mut labels = Vec::with_capacity(num_rows);
    for _ in 0..num_rows {
        let row: Vec<f64> = (0..num_features).map(|_| next() * 10.0).collect();
        let label = if constant_labels {
            42.0
        } else {
            // A mild non-linear relationship plus noise so trees have
            // something to split on.
            row.iter()
                .enumerate()
                .map(|(i, v)| {
                    if i % 2 == 0 {
                        *v
                    } else {
                        (v > &5.0) as u8 as f64 * 3.0
                    }
                })
                .sum::<f64>()
                + next()
        };
        rows.push(row);
        labels.push(label);
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let config = GbdtConfig {
        num_trees,
        max_leaves,
        min_samples_leaf: 3,
        ..GbdtConfig::default()
    };
    let model = GbdtRegressor::fit(config, &refs, &labels);
    let compiled = CompiledGbdt::compile(&model);
    (model, compiled, rows)
}

proptest! {
    #[test]
    fn prop_predict_bit_identical(
        num_rows in 20usize..120,
        num_features in 1usize..14,
        num_trees in 1usize..24,
        max_leaves in 1usize..24,
        seed in 0u64..1_000_000,
    ) {
        let (model, compiled, rows) = fit(num_rows, num_features, num_trees, max_leaves, seed, false);
        for row in &rows {
            let reference = model.predict(row);
            let fast = compiled.predict(row);
            prop_assert_eq!(
                reference.to_bits(), fast.to_bits(),
                "engines diverged: reference {} vs compiled {}", reference, fast
            );
        }
    }

    #[test]
    fn prop_short_rows_bit_identical(
        num_features in 2usize..10,
        num_trees in 1usize..16,
        max_leaves in 2usize..16,
        seed in 0u64..1_000_000,
        cut in 0usize..9,
    ) {
        let (model, compiled, rows) = fit(60, num_features, num_trees, max_leaves, seed, false);
        // Truncate every row below the trained feature count: the one
        // documented fallback (missing features read as 0.0) must agree
        // across engines.
        let cut = cut.min(num_features.saturating_sub(1));
        for row in &rows {
            let short = &row[..cut];
            prop_assert_eq!(model.predict(short).to_bits(), compiled.predict(short).to_bits());
        }
    }

    #[test]
    fn prop_predict_batch_matches_predict(
        num_features in 1usize..14,
        num_trees in 1usize..24,
        max_leaves in 1usize..24,
        seed in 0u64..1_000_000,
        batch in 1usize..70,
    ) {
        let (model, compiled, rows) = fit(80, num_features, num_trees, max_leaves, seed, false);
        // Pack the generated rows into fixed-width FeatureRows. Models
        // trained on more than FEATURE_COUNT features exercise the batch
        // fallback path (every FeatureRow is then a "short" row).
        let feature_rows: Vec<FeatureRow> = rows
            .iter()
            .take(batch)
            .map(|r| {
                let mut packed = FeatureRow::ZERO;
                for (slot, v) in packed.as_mut_slice().iter_mut().zip(r.iter()) {
                    *slot = *v;
                }
                packed
            })
            .collect();
        let mut out = vec![0.0f64; feature_rows.len()];
        compiled.predict_batch(&feature_rows, &mut out);
        for (row, batched) in feature_rows.iter().zip(&out) {
            let single = compiled.predict(row.as_slice());
            let reference = model.predict(row.as_slice());
            prop_assert_eq!(batched.to_bits(), single.to_bits());
            prop_assert_eq!(batched.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn prop_degenerate_single_leaf_ensembles(
        num_features in 1usize..6,
        num_trees in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        // Constant labels make every tree a single leaf; max_leaves: 1
        // forbids splits outright. Both degenerate shapes must compile and
        // agree with the reference.
        for constant in [true, false] {
            let max_leaves = if constant { 8 } else { 1 };
            let (model, compiled, rows) =
                fit(40, num_features, num_trees, max_leaves, seed, constant);
            prop_assert_eq!(compiled.internal_node_count(), 0);
            for row in &rows {
                prop_assert_eq!(model.predict(row).to_bits(), compiled.predict(row).to_bits());
            }
        }
    }
}

#[test]
fn feature_row_width_matches_schema() {
    // The batch kernel's once-per-batch validation hinges on this.
    assert_eq!(FeatureRow::ZERO.as_slice().len(), FEATURE_COUNT);
}
