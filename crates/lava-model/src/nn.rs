//! A minimal multi-layer-perceptron regressor.
//!
//! Appendix B of the paper compares the production GBDT against a "standard
//! regular neural network regression" built with Keras. This module is that
//! baseline's stand-in: a single-hidden-layer MLP with ReLU activations
//! trained by mini-batch SGD on squared error, with input standardisation.
//! It is intentionally small — the point of Table 4 is that the GBDT wins.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`MlpRegressor::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Number of hidden units.
    pub hidden_units: usize,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed for weight initialisation and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden_units: 32,
            epochs: 30,
            learning_rate: 0.01,
            batch_size: 32,
            seed: 17,
        }
    }
}

/// A trained single-hidden-layer MLP regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpRegressor {
    // Layer 1: hidden_units x num_features (+ bias per unit).
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    // Layer 2: 1 x hidden_units (+ bias).
    w2: Vec<f64>,
    b2: f64,
    // Input standardisation.
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl MlpRegressor {
    /// Train on feature rows and labels.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or lengths mismatch.
    pub fn fit(config: MlpConfig, rows: &[&[f64]], labels: &[f64]) -> MlpRegressor {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        assert!(!rows.is_empty(), "cannot train on an empty dataset");
        let n = rows.len();
        let p = rows[0].len();
        let h = config.hidden_units;
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        // Standardise inputs.
        let mut means = vec![0.0; p];
        let mut stds = vec![0.0; p];
        for j in 0..p {
            means[j] = rows.iter().map(|r| r[j]).sum::<f64>() / n as f64;
            let var = rows.iter().map(|r| (r[j] - means[j]).powi(2)).sum::<f64>() / n as f64;
            stds[j] = var.sqrt().max(1e-9);
        }
        let x: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| (0..p).map(|j| (r[j] - means[j]) / stds[j]).collect())
            .collect();

        let scale = (2.0 / p as f64).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..h)
            .map(|_| (0..p).map(|_| rng.gen_range(-scale..scale)).collect())
            .collect();
        let mut b1 = vec![0.0; h];
        let mut w2: Vec<f64> = (0..h).map(|_| rng.gen_range(-scale..scale)).collect();
        let mut b2 = labels.iter().sum::<f64>() / n as f64;

        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..config.epochs {
            // Deterministic shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(config.batch_size.max(1)) {
                let mut g_w1 = vec![vec![0.0; p]; h];
                let mut g_b1 = vec![0.0; h];
                let mut g_w2 = vec![0.0; h];
                let mut g_b2 = 0.0;
                for &i in batch {
                    // Forward.
                    let mut hidden = vec![0.0; h];
                    for k in 0..h {
                        let z: f64 =
                            w1[k].iter().zip(&x[i]).map(|(w, v)| w * v).sum::<f64>() + b1[k];
                        hidden[k] = z.max(0.0); // ReLU
                    }
                    let pred: f64 = w2.iter().zip(&hidden).map(|(w, v)| w * v).sum::<f64>() + b2;
                    let err = pred - labels[i];
                    // Backward.
                    g_b2 += err;
                    for k in 0..h {
                        g_w2[k] += err * hidden[k];
                        if hidden[k] > 0.0 {
                            let delta = err * w2[k];
                            g_b1[k] += delta;
                            for j in 0..p {
                                g_w1[k][j] += delta * x[i][j];
                            }
                        }
                    }
                }
                let lr = config.learning_rate / batch.len() as f64;
                b2 -= lr * g_b2;
                for k in 0..h {
                    w2[k] -= lr * g_w2[k];
                    b1[k] -= lr * g_b1[k];
                    for j in 0..p {
                        w1[k][j] -= lr * g_w1[k][j];
                    }
                }
            }
        }

        MlpRegressor {
            w1,
            b1,
            w2,
            b2,
            means,
            stds,
        }
    }

    /// Predict the response for one feature row.
    pub fn predict(&self, features: &[f64]) -> f64 {
        let p = self.means.len();
        let x: Vec<f64> = (0..p)
            .map(|j| {
                let v = features.get(j).copied().unwrap_or(0.0);
                (v - self.means[j]) / self.stds[j]
            })
            .collect();
        let mut out = self.b2;
        for k in 0..self.w1.len() {
            let z: f64 = self.w1[k].iter().zip(&x).map(|(w, v)| w * v).sum::<f64>() + self.b1[k];
            out += self.w2[k] * z.max(0.0);
        }
        out
    }

    /// Number of hidden units.
    pub fn hidden_units(&self) -> usize {
        self.w1.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn learns_linear_function() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..500 {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            rows.push(vec![a, b]);
            labels.push(2.0 * a - b + 0.5);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let model = MlpRegressor::fit(MlpConfig::default(), &refs, &labels);
        assert_eq!(model.hidden_units(), 32);
        let mse: f64 = rows
            .iter()
            .zip(&labels)
            .map(|(r, y)| (model.predict(r) - y).powi(2))
            .sum::<f64>()
            / labels.len() as f64;
        assert!(mse < 0.05, "mse {mse}");
    }

    #[test]
    fn learns_nonlinear_step() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..800 {
            let a: f64 = rng.gen_range(-1.0..1.0);
            rows.push(vec![a]);
            labels.push(if a > 0.0 { 1.0 } else { -1.0 });
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let config = MlpConfig {
            epochs: 80,
            ..MlpConfig::default()
        };
        let model = MlpRegressor::fit(config, &refs, &labels);
        assert!(model.predict(&[0.8]) > 0.5);
        assert!(model.predict(&[-0.8]) < -0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let rows = [vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let labels = vec![0.0, 1.0, 2.0, 3.0];
        let m1 = MlpRegressor::fit(MlpConfig::default(), &refs, &labels);
        let m2 = MlpRegressor::fit(MlpConfig::default(), &refs, &labels);
        assert_eq!(m1.predict(&[1.5]), m2.predict(&[1.5]));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let _ = MlpRegressor::fit(MlpConfig::default(), &[], &[]);
    }
}
