//! Compiled flat-GBDT inference (the paper's §5 "compile the model into
//! the binary" production story, Fig. 8).
//!
//! The reference [`GbdtRegressor`](crate::gbdt::GbdtRegressor) walks a
//! `Vec` of enum nodes per tree: every step pattern-matches a 40-byte
//! variant, bounds-checks the node index and bounds-checks the feature
//! lookup. That is fine for training but dominates the placement hot path,
//! where NILAS/LAVA repredict every VM on every candidate host.
//! [`CompiledGbdt`] flattens a trained ensemble once into
//! structure-of-arrays form:
//!
//! * one contiguous node arena holding **all trees back-to-back** —
//!   `u16` feature index, `f64` threshold and two *leaf-tagged* `u32`
//!   child slots per internal node;
//! * a separate leaf-value array with the learning rate **pre-folded** into
//!   every value (`fl(lr * leaf)` is exactly what the reference adds, so
//!   folding preserves bit-identical sums);
//! * a tagged root per tree (a degenerate single-leaf tree compiles to a
//!   leaf-tagged root and costs one load at inference time).
//!
//! Row length is validated **once per row** (or once per batch); the
//! traversal loop itself runs without bounds checks. Single-row prediction
//! steps [`INTERLEAVE_LANES`] trees in lock-step so several dependent node
//! loads are in flight at once (the arena of a paper-scale ensemble is a
//! few MiB — latency, not arithmetic, is the bottleneck), and
//! [`CompiledGbdt::predict_batch`] walks trees in the outer loop so each
//! tree's nodes stay cache-hot across all rows of a batch. Every path
//! produces **bit-identical** predictions to the reference engine — the
//! property tests in `tests/compiled_parity.rs` and the in-bench assert in
//! `model_latency` hold both engines to exact `f64` equality.

use crate::features::FeatureRow;
use crate::gbdt::{GbdtRegressor, Node};

/// Tag bit marking a child (or root) slot as a leaf reference: the low 31
/// bits index the leaf-value array instead of the node arena.
const LEAF_BIT: u32 = 1 << 31;

/// Number of trees the single-row kernel steps in lock-step. Eight lanes
/// keep enough node loads in flight to cover L2/L3 latency on a
/// paper-scale arena without starving the issue ports (measured: 8 beats
/// both 4 and 16 for one row).
pub const INTERLEAVE_LANES: usize = 8;

/// Number of rows the batched kernel steps in lock-step per tree. Rows
/// share the (cache-hot) tree nodes, so wider interleaving keeps paying
/// off longer than it does for the single-row kernel (measured: 16 beats
/// 8 for batches).
pub const BATCH_LANES: usize = 16;

/// A trained GBDT flattened for fast inference.
///
/// Build one with [`CompiledGbdt::compile`]; predictions are bit-identical
/// to [`GbdtRegressor::predict`] on every row (full-length or short).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledGbdt {
    base_prediction: f64,
    num_features: usize,
    /// Split feature per internal node (arena order, all trees
    /// back-to-back).
    feature: Vec<u16>,
    /// Split threshold per internal node; `row[feature] <= threshold` goes
    /// left.
    threshold: Vec<f64>,
    /// Leaf-tagged left child per internal node.
    left: Vec<u32>,
    /// Leaf-tagged right child per internal node.
    right: Vec<u32>,
    /// Leaf values with the learning rate pre-folded in.
    leaf_value: Vec<f64>,
    /// Leaf-tagged entry point of every tree, in boosting order.
    roots: Vec<u32>,
}

impl CompiledGbdt {
    /// Flatten a trained ensemble.
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is too large for the compact index encoding
    /// (more than 2³¹ internal nodes or leaves, or more than 2¹⁶ features)
    /// — far beyond any configuration this crate can train — or if a
    /// split references a feature index at or beyond
    /// `model.num_features()`, which `fit` never produces but a model
    /// deserialized from corrupt JSON could (the traversal loop's
    /// unchecked row indexing relies on that invariant).
    pub fn compile(model: &GbdtRegressor) -> CompiledGbdt {
        let learning_rate = model.config().learning_rate;
        let num_features = model.num_features();
        assert!(
            num_features <= u16::MAX as usize,
            "feature count {num_features} exceeds the compiled u16 encoding"
        );

        let mut compiled = CompiledGbdt {
            base_prediction: model.base_prediction(),
            num_features,
            feature: Vec::new(),
            threshold: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            leaf_value: Vec::new(),
            roots: Vec::with_capacity(model.tree_count()),
        };

        for tree in model.trees() {
            let nodes = tree.nodes();
            // First pass: assign every node its slot — internal nodes get
            // arena positions (in original node order, so each tree stays
            // contiguous), leaves get leaf-value positions.
            let mut slot = Vec::with_capacity(nodes.len());
            for node in nodes {
                match node {
                    Node::Leaf { value } => {
                        slot.push(compiled.leaf_value.len() as u32 | LEAF_BIT);
                        compiled.leaf_value.push(learning_rate * value);
                    }
                    Node::Split { .. } => {
                        slot.push(compiled.feature.len() as u32);
                        // Reserve the arena entry; filled in the second
                        // pass once every child knows its slot.
                        compiled.feature.push(0);
                        compiled.threshold.push(0.0);
                        compiled.left.push(0);
                        compiled.right.push(0);
                    }
                }
            }
            // Second pass: fill the internal nodes' split data and child
            // slots.
            for (node, &s) in nodes.iter().zip(&slot) {
                if let Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } = node
                {
                    let i = s as usize;
                    // Hard assert, not debug: the traversal loop indexes
                    // rows with `get_unchecked` on the strength of this
                    // invariant, and a `GbdtRegressor` can arrive from
                    // unvalidated JSON (`Deserialize`), not just from
                    // `fit`.
                    assert!(
                        *feature < num_features,
                        "trained split on feature {feature} >= num_features {num_features}"
                    );
                    compiled.feature[i] = *feature as u16;
                    compiled.threshold[i] = *threshold;
                    compiled.left[i] = slot[*left];
                    compiled.right[i] = slot[*right];
                }
            }
            compiled.roots.push(slot[0]);
        }
        assert!(
            compiled.feature.len() < LEAF_BIT as usize
                && compiled.leaf_value.len() < LEAF_BIT as usize,
            "ensemble too large for the 31-bit compiled index encoding"
        );
        compiled
    }

    /// Number of input features the source model was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of trees in the compiled ensemble.
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Total internal nodes in the arena (across all trees).
    pub fn internal_node_count(&self) -> usize {
        self.feature.len()
    }

    /// Total leaves (across all trees).
    pub fn leaf_count(&self) -> usize {
        self.leaf_value.len()
    }

    /// Step one lane: an internal reference loads its split and descends
    /// one level; a leaf reference is returned unchanged (self-loop), so
    /// lanes that finish early can keep "stepping" harmlessly while their
    /// interleave partners catch up.
    ///
    /// # Safety
    ///
    /// `row` must cover every feature index stored in the arena (validated
    /// once per row by the callers) and `node` must be a slot produced by
    /// [`CompiledGbdt::compile`] for this ensemble.
    #[inline(always)]
    unsafe fn step(&self, node: u32, row: &[f64]) -> u32 {
        if node & LEAF_BIT != 0 {
            return node;
        }
        let i = node as usize;
        let f = *self.feature.get_unchecked(i) as usize;
        let t = *self.threshold.get_unchecked(i);
        let v = *row.get_unchecked(f);
        if v <= t {
            *self.left.get_unchecked(i)
        } else {
            *self.right.get_unchecked(i)
        }
    }

    /// Descend from a tagged slot to its leaf and return the (pre-scaled)
    /// leaf value.
    ///
    /// # Safety
    ///
    /// Same contract as [`CompiledGbdt::step`].
    #[inline(always)]
    unsafe fn descend(&self, mut node: u32, row: &[f64]) -> f64 {
        while node & LEAF_BIT == 0 {
            node = self.step(node, row);
        }
        *self.leaf_value.get_unchecked((node ^ LEAF_BIT) as usize)
    }

    /// Predict the response for one feature row.
    ///
    /// The row's length is validated once: full-length rows take the
    /// bounds-check-free interleaved kernel, shorter rows take the
    /// documented legacy fallback (missing features read as `0.0`,
    /// matching [`GbdtRegressor::predict`] bit-for-bit).
    pub fn predict(&self, row: &[f64]) -> f64 {
        if row.len() >= self.num_features {
            self.predict_full(row)
        } else {
            self.predict_short(row)
        }
    }

    /// The bounds-check-free kernel for validated rows: trees are traversed
    /// [`INTERLEAVE_LANES`] at a time so the dependent node loads of
    /// several trees overlap, each group running a fixed (max-of-lanes)
    /// padded step count; leaf contributions are then added in exact
    /// boosting order.
    fn predict_full(&self, row: &[f64]) -> f64 {
        debug_assert!(row.len() >= self.num_features);
        let mut pred = self.base_prediction;
        let mut chunks = self.roots.chunks_exact(INTERLEAVE_LANES);
        for chunk in &mut chunks {
            let mut lanes = [0u32; INTERLEAVE_LANES];
            lanes.copy_from_slice(chunk);
            // SAFETY: the row covers `num_features` (checked by the
            // caller) and every slot comes from `compile`.
            unsafe {
                while lanes.iter().any(|&n| n & LEAF_BIT == 0) {
                    for lane in &mut lanes {
                        *lane = self.step(*lane, row);
                    }
                }
                for &lane in &lanes {
                    pred += *self.leaf_value.get_unchecked((lane ^ LEAF_BIT) as usize);
                }
            }
        }
        for &root in chunks.remainder() {
            // SAFETY: as above.
            pred += unsafe { self.descend(root, row) };
        }
        pred
    }

    /// The legacy short-row fallback: replicates the reference engine's
    /// per-node `features.get(f).unwrap_or(0.0)` semantics exactly.
    fn predict_short(&self, row: &[f64]) -> f64 {
        let mut pred = self.base_prediction;
        for &root in &self.roots {
            let mut node = root;
            while node & LEAF_BIT == 0 {
                let i = node as usize;
                let f = self.feature[i] as usize;
                let v = row.get(f).copied().unwrap_or(0.0);
                node = if v <= self.threshold[i] {
                    self.left[i]
                } else {
                    self.right[i]
                };
            }
            pred += self.leaf_value[(node ^ LEAF_BIT) as usize];
        }
        pred
    }

    /// Predict a batch of rows, writing one prediction per row into `out`.
    ///
    /// Row length is a compile-time property of [`FeatureRow`], so the
    /// whole batch is validated with a single comparison; the kernel then
    /// walks **trees in the outer loop** (each tree's few cache lines stay
    /// hot across every row of the batch) and steps
    /// [`BATCH_LANES`] *rows* of that tree in lock-step — rows are
    /// independent, so their node loads overlap instead of forming one
    /// serial dependency chain. Predictions are bit-identical to calling
    /// [`CompiledGbdt::predict`] per row (each row still accumulates base
    /// value, then trees in boosting order). Performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `out` have different lengths.
    pub fn predict_batch(&self, rows: &[FeatureRow], out: &mut [f64]) {
        assert_eq!(rows.len(), out.len(), "rows/out length mismatch");
        if crate::features::FEATURE_COUNT < self.num_features {
            // A model trained on wider rows than the schema produces:
            // every row is "short" — take the legacy fallback per row.
            for (row, o) in rows.iter().zip(out.iter_mut()) {
                *o = self.predict_short(row.as_slice());
            }
            return;
        }
        out.fill(self.base_prediction);
        for &root in &self.roots {
            let mut row_chunks = rows.chunks_exact(BATCH_LANES);
            let mut out_chunks = out.chunks_exact_mut(BATCH_LANES);
            for (row_chunk, out_chunk) in (&mut row_chunks).zip(&mut out_chunks) {
                let mut lanes = [root; BATCH_LANES];
                // SAFETY: `FeatureRow` rows always carry `FEATURE_COUNT`
                // values, and `FEATURE_COUNT >= num_features` was checked
                // once for the whole batch.
                unsafe {
                    while lanes.iter().any(|&n| n & LEAF_BIT == 0) {
                        for (lane, row) in lanes.iter_mut().zip(row_chunk) {
                            *lane = self.step(*lane, row.as_slice());
                        }
                    }
                    for (&lane, o) in lanes.iter().zip(out_chunk.iter_mut()) {
                        *o += *self.leaf_value.get_unchecked((lane ^ LEAF_BIT) as usize);
                    }
                }
            }
            for (row, o) in row_chunks
                .remainder()
                .iter()
                .zip(out_chunks.into_remainder().iter_mut())
            {
                // SAFETY: as above.
                *o += unsafe { self.descend(root, row.as_slice()) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::GbdtConfig;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn synthetic_model(n: usize, seed: u64, config: GbdtConfig) -> (GbdtRegressor, Vec<Vec<f64>>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f64 = rng.gen_range(0.0..10.0);
            let x1: f64 = rng.gen_range(0.0..5.0);
            let x2: f64 = rng.gen_range(0.0..1.0);
            labels.push(if x0 > 5.0 { 3.0 } else { 1.0 } + 0.5 * x1 + 0.1 * x2);
            rows.push(vec![x0, x1, x2]);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (GbdtRegressor::fit(config, &refs, &labels), rows)
    }

    #[test]
    fn compiled_matches_reference_bit_for_bit() {
        let (model, rows) = synthetic_model(800, 11, GbdtConfig::fast());
        let compiled = CompiledGbdt::compile(&model);
        assert_eq!(compiled.tree_count(), model.tree_count());
        for row in &rows {
            let reference = model.predict(row);
            let fast = compiled.predict(row);
            assert_eq!(reference.to_bits(), fast.to_bits(), "row {row:?}");
        }
    }

    #[test]
    fn short_rows_match_reference() {
        let (model, _) = synthetic_model(400, 5, GbdtConfig::fast());
        let compiled = CompiledGbdt::compile(&model);
        for short in [&[][..], &[4.2][..], &[9.9, 1.0][..]] {
            assert_eq!(
                model.predict(short).to_bits(),
                compiled.predict(short).to_bits(),
                "short row {short:?}"
            );
        }
    }

    #[test]
    fn degenerate_single_leaf_trees_compile() {
        // Constant labels: every tree after the first has nothing to fit,
        // so the ensemble is dominated by single-leaf trees.
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let labels = vec![7.0; 3];
        let model = GbdtRegressor::fit(GbdtConfig::fast(), &refs, &labels);
        let compiled = CompiledGbdt::compile(&model);
        assert_eq!(compiled.internal_node_count(), 0);
        for row in &rows {
            assert_eq!(
                model.predict(row).to_bits(),
                compiled.predict(row).to_bits()
            );
        }
    }

    #[test]
    fn node_accounting_is_exact() {
        let (model, _) = synthetic_model(600, 3, GbdtConfig::fast());
        let compiled = CompiledGbdt::compile(&model);
        let leaves: usize = model.trees().iter().map(|t| t.leaf_count()).sum();
        assert_eq!(compiled.leaf_count(), leaves);
        // A binary tree with L leaves has L - 1 internal nodes.
        assert_eq!(compiled.internal_node_count(), leaves - model.tree_count());
    }
}
