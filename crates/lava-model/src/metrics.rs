//! Model-quality metrics: precision/recall/F1 at a lifetime threshold,
//! concordance index (C-index) and log-domain error statistics.
//!
//! The paper reports "99 % precision at 70 % recall" for classifying VMs as
//! long-lived at a 7-day threshold (§3), C-index for survival baselines
//! (Table 4), F1 versus uptime quantile (Fig. 9) and a log10 error histogram
//! (Fig. 12).

use lava_core::time::Duration;
use serde::{Deserialize, Serialize};

/// Binary-classification counts at a lifetime threshold, where the positive
/// class is "long-lived" (lifetime above the threshold).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionCounts {
    /// Predicted long and actually long.
    pub true_positives: u64,
    /// Predicted long but actually short.
    pub false_positives: u64,
    /// Predicted short and actually short.
    pub true_negatives: u64,
    /// Predicted short but actually long.
    pub false_negatives: u64,
}

impl ConfusionCounts {
    /// Accumulate one (predicted, actual) lifetime pair against a threshold.
    ///
    /// "Long-lived" means living for at least the threshold; the comparison
    /// is inclusive so that predictions capped exactly at the threshold
    /// (the 7-day label cap of Appendix B) count as long-lived.
    pub fn observe(&mut self, predicted: Duration, actual: Duration, threshold: Duration) {
        let pred_long = predicted >= threshold;
        let actual_long = actual >= threshold;
        match (pred_long, actual_long) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (false, true) => self.false_negatives += 1,
        }
    }

    /// Precision of the long-lived class (1.0 when no positives were
    /// predicted).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall of the long-lived class (1.0 when there are no long-lived
    /// examples).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall; 0.0 when both are
    /// zero).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total =
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives;
        if total == 0 {
            1.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / total as f64
        }
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }
}

/// Classify (predicted, actual) lifetime pairs at a threshold and return
/// the confusion counts.
pub fn classify_at_threshold(
    pairs: impl IntoIterator<Item = (Duration, Duration)>,
    threshold: Duration,
) -> ConfusionCounts {
    let mut counts = ConfusionCounts::default();
    for (predicted, actual) in pairs {
        counts.observe(predicted, actual, threshold);
    }
    counts
}

/// Concordance index (C-index) of a risk score against observed lifetimes.
///
/// For every comparable pair (different lifetimes), the pair is concordant
/// if the example with the *shorter* lifetime has the *higher* risk score.
/// Ties in risk count as half-concordant. Returns 0.5 for degenerate inputs
/// (no comparable pairs).
pub fn concordance_index(risk_scores: &[f64], lifetimes: &[Duration]) -> f64 {
    assert_eq!(
        risk_scores.len(),
        lifetimes.len(),
        "risk/lifetime length mismatch"
    );
    let n = risk_scores.len();
    let mut concordant = 0.0;
    let mut comparable = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            if lifetimes[i] == lifetimes[j] {
                continue;
            }
            comparable += 1.0;
            let (short, long) = if lifetimes[i] < lifetimes[j] {
                (i, j)
            } else {
                (j, i)
            };
            if risk_scores[short] > risk_scores[long] {
                concordant += 1.0;
            } else if (risk_scores[short] - risk_scores[long]).abs() < 1e-12 {
                concordant += 0.5;
            }
        }
    }
    if comparable == 0.0 {
        0.5
    } else {
        concordant / comparable
    }
}

/// Absolute prediction error in the log10 domain (Appendix C):
/// `|log10(predicted) − log10(actual)|`, with a one-second floor on both.
pub fn log10_error(predicted: Duration, actual: Duration) -> f64 {
    (predicted.log10_secs() - actual.log10_secs()).abs()
}

/// A fixed-width histogram over `[0, max)` with an overflow bucket, used for
/// the error and latency histograms (Figs. 8 and 12).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Create a histogram with `buckets` equal-width buckets covering
    /// `[0, max)` plus one overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `max <= 0`.
    pub fn new(max: f64, buckets: usize) -> Histogram {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(max > 0.0, "histogram max must be positive");
        Histogram {
            bucket_width: max / buckets as f64,
            max,
            counts: vec![0; buckets + 1],
            total: 0,
            sum: 0.0,
        }
    }

    /// Record one observation (negative values are clamped to zero).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        let idx = if v >= self.max {
            self.counts.len() - 1
        } else {
            (v / self.bucket_width) as usize
        };
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Approximate quantile from the histogram buckets.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (self.total as f64 * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == self.counts.len() - 1 {
                    self.max
                } else {
                    (i as f64 + 0.5) * self.bucket_width
                };
            }
        }
        self.max
    }

    /// Bucket boundaries and counts: `(lower_bound, count)` for every
    /// bucket, the final entry being the overflow bucket.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 * self.bucket_width, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hours(h: u64) -> Duration {
        Duration::from_hours(h)
    }

    #[test]
    fn confusion_counts_and_scores() {
        let threshold = hours(168);
        let pairs = vec![
            (hours(200), hours(300)), // TP
            (hours(200), hours(10)),  // FP
            (hours(5), hours(5)),     // TN
            (hours(5), hours(400)),   // FN
            (hours(400), hours(400)), // TP
        ];
        let c = classify_at_threshold(pairs, threshold);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.true_negatives, 1);
        assert_eq!(c.false_negatives, 1);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn empty_counts_degenerate_values() {
        let c = ConfusionCounts::default();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn perfect_risk_ordering_gives_cindex_one() {
        // Risk must be inversely ordered with lifetime.
        let lifetimes: Vec<Duration> = (1..=10).map(hours).collect();
        let risks: Vec<f64> = (1..=10).map(|i| -(i as f64)).collect();
        assert!((concordance_index(&risks, &lifetimes) - 1.0).abs() < 1e-12);
        let anti: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert!(concordance_index(&anti, &lifetimes) < 1e-12);
    }

    #[test]
    fn constant_risk_gives_half() {
        let lifetimes: Vec<Duration> = (1..=10).map(hours).collect();
        let risks = vec![1.0; 10];
        assert!((concordance_index(&risks, &lifetimes) - 0.5).abs() < 1e-12);
        assert_eq!(concordance_index(&[], &[]), 0.5);
    }

    #[test]
    fn log10_error_examples() {
        assert!((log10_error(Duration(1000), Duration(100)) - 1.0).abs() < 1e-12);
        assert!((log10_error(Duration(100), Duration(1000)) - 1.0).abs() < 1e-12);
        assert_eq!(log10_error(Duration(500), Duration(500)), 0.0);
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let mut h = Histogram::new(10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // 0.0 .. 9.9
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 4.95).abs() < 1e-9);
        let median = h.quantile(0.5);
        assert!((median - 4.5).abs() <= 1.0, "median {median}");
        h.record(1e9); // overflow bucket
        assert_eq!(h.buckets().last().unwrap().1, 1);
        assert_eq!(h.quantile(1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_zero_buckets_panics() {
        let _ = Histogram::new(1.0, 0);
    }
}
