//! Adaptive model management: hot-swappable predictors, degraded predictor
//! variants, and online recalibration.
//!
//! The paper's title promises adaptation to mispredictions; §6.6 / Fig. 10
//! show model accuracy decaying under workload drift. This module supplies
//! the model-side mechanics the simulation's incident layer
//! (`lava-sim/src/chaos.rs`) builds on:
//!
//! * [`SwappablePredictor`] — an `Arc`-shareable predictor whose *live*
//!   implementation can be replaced mid-run (predictor-degradation
//!   incidents) and whose output can be shifted by a log10-domain
//!   correction (online recalibration). Every call reads the current state
//!   behind an `RwLock`; swaps are rare, predictions are the hot path.
//! * [`StalePredictor`] — serves every VM its scheduling-time prediction
//!   forever (no reprediction conditioning), modelling a model-serving
//!   pipeline that stopped refreshing.
//! * [`BiasedPredictor`] — scales the inner predictor's output by a
//!   constant factor in the log10 domain, modelling systematic drift
//!   between the training and serving distributions.
//! * [`median_log10_residual`] — the quantile-recalibration fit: the
//!   median signed residual (actual − predicted, log10 domain) over a
//!   window of observed lifetimes, which [`SwappablePredictor::apply_offset`]
//!   then cancels. For a constant multiplicative bias one round converges;
//!   draining the observation window between rounds keeps repeated
//!   recalibrations from double-counting old residuals.

use crate::predictor::{duration_from_log10, LifetimePredictor};
use lava_core::time::{Duration, SimTime};
use lava_core::vm::Vm;
use std::sync::{Arc, RwLock};

/// Cap applied when reconstructing a shifted prediction. Deliberately
/// [`SwappablePredictor::MAX_OFFSET_LOG10`] decades above the noisy
/// oracle's 14-day cap: the cap must never bind within the offset clamp
/// range, or a shift stops being invertible — the recalibration loop would
/// then chase the clipped mass it cannot actually move, dragging the
/// offset away from the true bias (observed as a runaway to the clamp
/// when a strongly positive bias met a binding 14-day cap).
const SHIFT_CAP: Duration = Duration(14 * 86_400 * 1_000);

/// Floor for shifted predictions, mirroring
/// [`crate::predictor::NoisyOraclePredictor`]'s "about to exit" floor.
const SHIFT_FLOOR: Duration = Duration(60);

/// Apply a log10-domain shift to a predicted duration.
fn shift(d: Duration, offset_log10: f64) -> Duration {
    if offset_log10 == 0.0 {
        return d;
    }
    duration_from_log10(d.log10_secs() + offset_log10, SHIFT_CAP).max(SHIFT_FLOOR)
}

/// A predictor that always serves the VM's scheduling-time prediction,
/// never conditioning on observed uptime: repredictions return the initial
/// total-lifetime prediction minus uptime. VMs placed before the
/// degradation (or through paths that bypass initial-prediction capture)
/// fall through to the inner predictor.
pub struct StalePredictor {
    inner: Arc<dyn LifetimePredictor>,
}

impl StalePredictor {
    /// Wrap `inner`, freezing each VM's prediction at scheduling time.
    pub fn new(inner: Arc<dyn LifetimePredictor>) -> StalePredictor {
        StalePredictor { inner }
    }
}

impl LifetimePredictor for StalePredictor {
    fn predict_remaining(&self, vm: &Vm, now: SimTime) -> Duration {
        match vm.initial_prediction() {
            Some(total) => total.saturating_sub(vm.uptime(now)).max(SHIFT_FLOOR),
            None => self.inner.predict_remaining(vm, now),
        }
    }

    fn name(&self) -> &'static str {
        "stale"
    }
}

/// A predictor that scales the inner predictor's output by a constant
/// factor: `1 + bias_pct / 100`, applied in the log10 domain (floored at
/// 1 % so extreme negative biases stay finite).
pub struct BiasedPredictor {
    inner: Arc<dyn LifetimePredictor>,
    bias_log10: f64,
}

impl BiasedPredictor {
    /// Wrap `inner` with a systematic bias of `bias_pct` percent.
    pub fn new(inner: Arc<dyn LifetimePredictor>, bias_pct: i16) -> BiasedPredictor {
        let factor = (1.0 + bias_pct as f64 / 100.0).max(0.01);
        BiasedPredictor {
            inner,
            bias_log10: factor.log10(),
        }
    }

    /// The bias as a log10-domain shift.
    pub fn bias_log10(&self) -> f64 {
        self.bias_log10
    }
}

impl LifetimePredictor for BiasedPredictor {
    fn predict_remaining(&self, vm: &Vm, now: SimTime) -> Duration {
        shift(self.inner.predict_remaining(vm, now), self.bias_log10)
    }

    fn name(&self) -> &'static str {
        "biased"
    }
}

struct AdaptiveState {
    live: Arc<dyn LifetimePredictor>,
    offset_log10: f64,
}

/// The hot-swap seam of the adaptive model-management layer.
///
/// Wraps a *base* predictor; the scheduler holds the wrapper for the whole
/// run, so the incident layer can degrade, restore or recalibrate the live
/// model mid-run without touching the scheduler. All mutations and reads
/// go through one `RwLock`, so a swap is atomic with respect to every
/// prediction.
pub struct SwappablePredictor {
    base: Arc<dyn LifetimePredictor>,
    state: RwLock<AdaptiveState>,
}

impl SwappablePredictor {
    /// Maximum absolute recalibration offset (log10 domain): three orders
    /// of magnitude, far beyond any sane correction, guarding against a
    /// runaway feedback loop.
    pub const MAX_OFFSET_LOG10: f64 = 3.0;

    /// Wrap `base`; the live predictor starts as the base with no offset.
    pub fn new(base: Arc<dyn LifetimePredictor>) -> Arc<SwappablePredictor> {
        Arc::new(SwappablePredictor {
            state: RwLock::new(AdaptiveState {
                live: base.clone(),
                offset_log10: 0.0,
            }),
            base,
        })
    }

    /// Replace the live predictor with a degraded `variant` and clear any
    /// recalibration offset (it was fitted against the previous model).
    pub fn degrade(&self, variant: Arc<dyn LifetimePredictor>) {
        let mut state = self.state.write().expect("predictor lock poisoned");
        state.live = variant;
        state.offset_log10 = 0.0;
    }

    /// Restore the base predictor and clear any recalibration offset.
    pub fn restore(&self) {
        let mut state = self.state.write().expect("predictor lock poisoned");
        state.live = self.base.clone();
        state.offset_log10 = 0.0;
    }

    /// Add `delta` to the recalibration offset (clamped to
    /// ±[`Self::MAX_OFFSET_LOG10`]).
    pub fn apply_offset(&self, delta: f64) {
        if !delta.is_finite() {
            return;
        }
        let mut state = self.state.write().expect("predictor lock poisoned");
        state.offset_log10 =
            (state.offset_log10 + delta).clamp(-Self::MAX_OFFSET_LOG10, Self::MAX_OFFSET_LOG10);
    }

    /// The current recalibration offset (log10 domain).
    pub fn offset_log10(&self) -> f64 {
        self.state
            .read()
            .expect("predictor lock poisoned")
            .offset_log10
    }

    /// The live predictor's report name (`"oracle"`, `"biased"`, …).
    pub fn live_name(&self) -> &'static str {
        self.state
            .read()
            .expect("predictor lock poisoned")
            .live
            .name()
    }

    /// The wrapped base predictor.
    pub fn base(&self) -> &Arc<dyn LifetimePredictor> {
        &self.base
    }
}

impl LifetimePredictor for SwappablePredictor {
    fn predict_remaining(&self, vm: &Vm, now: SimTime) -> Duration {
        let state = self.state.read().expect("predictor lock poisoned");
        shift(state.live.predict_remaining(vm, now), state.offset_log10)
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// The quantile-recalibration fit: the median signed residual
/// `log10(actual) − log10(predicted)` over observed `(predicted, actual)`
/// lifetime pairs. Returns `None` when `residuals` is empty. Applying the
/// returned value through [`SwappablePredictor::apply_offset`] cancels a
/// constant multiplicative bias in one round (the median makes the fit
/// robust to the heavy-tailed errors mispredicted VMs produce).
pub fn median_log10_residual(residuals: &[f64]) -> Option<f64> {
    let mut finite: Vec<f64> = residuals
        .iter()
        .copied()
        .filter(|r| r.is_finite())
        .collect();
    if finite.is_empty() {
        return None;
    }
    finite.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals compare"));
    let n = finite.len();
    Some(if n % 2 == 1 {
        finite[n / 2]
    } else {
        (finite[n / 2 - 1] + finite[n / 2]) / 2.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{ConstantPredictor, OraclePredictor};
    use lava_core::resources::Resources;
    use lava_core::vm::{VmId, VmSpec};

    fn vm(id: u64, hours: u64) -> Vm {
        Vm::new(
            VmId(id),
            VmSpec::builder(Resources::cores_gib(2, 8)).build(),
            SimTime::ZERO,
            Duration::from_hours(hours),
        )
    }

    #[test]
    fn stale_predictor_freezes_the_initial_prediction() {
        let stale = StalePredictor::new(Arc::new(OraclePredictor::new()));
        let mut v = vm(1, 10);
        // No captured initial prediction: falls through to the inner model.
        assert_eq!(
            stale.predict_remaining(&v, SimTime::ZERO),
            Duration::from_hours(10)
        );
        v.set_initial_prediction(Duration::from_hours(4));
        let later = SimTime::ZERO + Duration::from_hours(3);
        assert_eq!(
            stale.predict_remaining(&v, later),
            Duration::from_hours(1),
            "initial prediction minus uptime, never re-conditioned"
        );
        // Past the stale prediction: floors at the about-to-exit minimum.
        let much_later = SimTime::ZERO + Duration::from_hours(9);
        assert_eq!(stale.predict_remaining(&v, much_later), SHIFT_FLOOR);
        assert_eq!(stale.name(), "stale");
    }

    #[test]
    fn biased_predictor_scales_predictions() {
        let oracle: Arc<dyn LifetimePredictor> = Arc::new(OraclePredictor::new());
        let under = BiasedPredictor::new(oracle.clone(), -90);
        let over = BiasedPredictor::new(oracle.clone(), 100);
        let v = vm(1, 100);
        let truth = oracle.predict_remaining(&v, SimTime::ZERO);
        let u = under.predict_remaining(&v, SimTime::ZERO);
        let o = over.predict_remaining(&v, SimTime::ZERO);
        assert!(u < truth, "negative bias under-predicts");
        assert!(o > truth, "positive bias over-predicts");
        let ratio = u.as_secs() as f64 / truth.as_secs() as f64;
        assert!((ratio - 0.1).abs() < 0.01, "−90 % ≈ 0.1×, got {ratio}");
        assert!(BiasedPredictor::new(oracle, 0).bias_log10().abs() < 1e-12);
    }

    #[test]
    fn swappable_predictor_swaps_and_restores() {
        let swap = SwappablePredictor::new(Arc::new(OraclePredictor::new()));
        let v = vm(1, 10);
        assert_eq!(
            swap.predict_remaining(&v, SimTime::ZERO),
            Duration::from_hours(10)
        );
        assert_eq!(swap.live_name(), "oracle");
        swap.degrade(Arc::new(ConstantPredictor::new(Duration::from_hours(1))));
        assert_eq!(
            swap.predict_remaining(&v, SimTime::ZERO),
            Duration::from_hours(1)
        );
        assert_eq!(swap.live_name(), "constant");
        swap.restore();
        assert_eq!(
            swap.predict_remaining(&v, SimTime::ZERO),
            Duration::from_hours(10)
        );
        assert_eq!(swap.name(), "adaptive");
    }

    #[test]
    fn offset_corrects_a_constant_bias() {
        let base: Arc<dyn LifetimePredictor> = Arc::new(OraclePredictor::new());
        let swap = SwappablePredictor::new(base.clone());
        swap.degrade(Arc::new(BiasedPredictor::new(base, -90)));
        let v = vm(1, 100);
        let truth = Duration::from_hours(100);
        let biased = swap.predict_remaining(&v, SimTime::ZERO);
        assert!(biased < truth);
        // The residual of a −90 % bias is +1 in the log10 domain.
        let residual = truth.log10_secs() - biased.log10_secs();
        swap.apply_offset(residual);
        let corrected = swap.predict_remaining(&v, SimTime::ZERO);
        let ratio = corrected.as_secs() as f64 / truth.as_secs() as f64;
        assert!(
            (ratio - 1.0).abs() < 0.01,
            "offset cancels the bias: {ratio}"
        );
        // Degrading again clears the (now stale) offset.
        swap.degrade(Arc::new(ConstantPredictor::new(Duration::from_hours(1))));
        assert_eq!(swap.offset_log10(), 0.0);
        // Offsets clamp and ignore non-finite deltas.
        swap.apply_offset(f64::NAN);
        assert_eq!(swap.offset_log10(), 0.0);
        swap.apply_offset(100.0);
        assert_eq!(swap.offset_log10(), SwappablePredictor::MAX_OFFSET_LOG10);
    }

    #[test]
    fn median_residual_is_robust_and_handles_edge_cases() {
        assert_eq!(median_log10_residual(&[]), None);
        assert_eq!(median_log10_residual(&[f64::NAN]), None);
        assert_eq!(median_log10_residual(&[0.5]), Some(0.5));
        assert_eq!(median_log10_residual(&[1.0, 3.0]), Some(2.0));
        // An outlier does not move the median.
        assert_eq!(
            median_log10_residual(&[1.0, 1.0, 1.0, 1.0, 50.0]),
            Some(1.0)
        );
    }
}
