//! Gradient-boosted decision trees (GBDT) for remaining-lifetime regression.
//!
//! This is a from-scratch stand-in for the Yggdrasil Decision Forests model
//! used in the paper (Appendix B): squared-error gradient boosting over
//! regression trees grown **best-first** (the paper's "Best First Global"
//! growing strategy) with a bounded number of leaves (32 in the paper).
//! Split finding uses per-feature quantile histograms so training stays fast
//! on large traces, and split gains are accumulated per feature to provide
//! the *split score* feature importance used in Fig. 11.

use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Hyperparameters for [`GbdtRegressor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Number of boosting rounds (trees). The paper uses 2000; the default
    /// here is smaller so that simulation-scale retraining stays fast —
    /// accuracy on the synthetic traces saturates well below that.
    pub num_trees: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Maximum number of leaves per tree (paper: 32, best-first growth).
    pub max_leaves: usize,
    /// Minimum number of examples in a leaf.
    pub min_samples_leaf: usize,
    /// Number of histogram bins per feature used for split finding.
    pub max_bins: usize,
    /// Minimum total gain required to apply a split.
    pub min_gain: f64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            num_trees: 120,
            learning_rate: 0.1,
            max_leaves: 32,
            min_samples_leaf: 20,
            max_bins: 64,
            min_gain: 1e-9,
        }
    }
}

impl GbdtConfig {
    /// The configuration reported in the paper (Appendix B): 2000 trees,
    /// 32 leaves, best-first growth. Slow to train; use for full-fidelity
    /// runs only.
    pub fn paper() -> GbdtConfig {
        GbdtConfig {
            num_trees: 2000,
            ..GbdtConfig::default()
        }
    }

    /// A fast configuration for unit tests and smoke runs.
    pub fn fast() -> GbdtConfig {
        GbdtConfig {
            num_trees: 30,
            max_leaves: 16,
            min_samples_leaf: 5,
            ..GbdtConfig::default()
        }
    }
}

/// A node in a regression tree (flat representation). Crate-visible so
/// [`crate::compiled::CompiledGbdt`] can flatten trained trees into its
/// arena without a public node API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        /// Examples with `features[feature] <= threshold` go left.
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A single regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Predict the response for one feature row.
    ///
    /// **Short-row fallback:** a feature index beyond the end of `features`
    /// reads as `0.0` instead of panicking. This is the one documented
    /// missing-feature semantic shared by every inference engine in this
    /// crate (see [`GbdtRegressor::predict`], which validates row length
    /// once and only routes genuinely short rows through this fallback, and
    /// the compiled engine, which replicates it bit-for-bit).
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict for a row already validated to cover every feature the
    /// ensemble was trained on: plain indexing, no per-node `Option`.
    fn predict_full(&self, features: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// The tree's flat node storage (for the compiled engine).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }
}

/// Per-feature quantile bin edges used for histogram split finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Binner {
    /// `edges[f]` are the upper edges of the bins of feature `f`
    /// (ascending). A value is assigned to the first bin whose edge is
    /// `>=` the value.
    edges: Vec<Vec<f64>>,
}

impl Binner {
    fn fit(rows: &[&[f64]], num_features: usize, max_bins: usize) -> Binner {
        let mut edges = Vec::with_capacity(num_features);
        for f in 0..num_features {
            let mut values: Vec<f64> = rows
                .iter()
                .map(|r| r.get(f).copied().unwrap_or(0.0))
                .filter(|v| v.is_finite())
                .collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            values.dedup();
            let feature_edges = if values.len() <= max_bins {
                values
            } else {
                // Quantile edges.
                (1..=max_bins)
                    .map(|i| {
                        let q = i as f64 / max_bins as f64;
                        let pos = ((values.len() - 1) as f64 * q).round() as usize;
                        values[pos]
                    })
                    .collect::<Vec<f64>>()
            };
            edges.push(feature_edges);
        }
        Binner { edges }
    }

    fn num_bins(&self, feature: usize) -> usize {
        self.edges[feature].len()
    }

    fn bin(&self, feature: usize, value: f64) -> usize {
        let edges = &self.edges[feature];
        if edges.is_empty() {
            return 0;
        }
        match edges.binary_search_by(|e| e.partial_cmp(&value).expect("finite")) {
            Ok(idx) => idx,
            Err(idx) => idx.min(edges.len() - 1),
        }
    }

    /// The split threshold corresponding to a bin boundary: the upper edge
    /// of the bin.
    fn threshold(&self, feature: usize, bin: usize) -> f64 {
        self.edges[feature][bin]
    }
}

#[derive(Debug, Clone)]
struct SplitCandidate {
    gain: f64,
    feature: usize,
    bin: usize,
    left_indices: Vec<u32>,
    right_indices: Vec<u32>,
    left_value: f64,
    right_value: f64,
}

/// Entry in the best-first growth priority queue.
struct GrowthEntry {
    gain: f64,
    node_index: usize,
    candidate: SplitCandidate,
}

impl PartialEq for GrowthEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain
    }
}
impl Eq for GrowthEntry {}
impl PartialOrd for GrowthEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GrowthEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// A trained gradient-boosted regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtRegressor {
    config: GbdtConfig,
    base_prediction: f64,
    trees: Vec<RegressionTree>,
    /// Accumulated split gain per feature (the "split score" importance).
    feature_importance: Vec<f64>,
    num_features: usize,
}

impl GbdtRegressor {
    /// Train a model on the given feature rows and labels.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `labels` have different lengths or `rows` is
    /// empty.
    pub fn fit(config: GbdtConfig, rows: &[&[f64]], labels: &[f64]) -> GbdtRegressor {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        assert!(!rows.is_empty(), "cannot train on an empty dataset");
        let num_features = rows[0].len();
        let binner = Binner::fit(rows, num_features, config.max_bins);

        // Pre-bin every example once.
        let binned: Vec<Vec<u16>> = rows
            .iter()
            .map(|r| {
                (0..num_features)
                    .map(|f| binner.bin(f, r.get(f).copied().unwrap_or(0.0)) as u16)
                    .collect()
            })
            .collect();

        let base_prediction = labels.iter().sum::<f64>() / labels.len() as f64;
        let mut predictions = vec![base_prediction; labels.len()];
        let mut trees = Vec::with_capacity(config.num_trees);
        let mut feature_importance = vec![0.0; num_features];

        for _ in 0..config.num_trees {
            let residuals: Vec<f64> = labels
                .iter()
                .zip(&predictions)
                .map(|(y, p)| y - p)
                .collect();
            let tree = Self::fit_tree(
                &config,
                &binner,
                &binned,
                &residuals,
                &mut feature_importance,
            );
            for (i, row) in rows.iter().enumerate() {
                predictions[i] += config.learning_rate * tree.predict(row);
            }
            trees.push(tree);
        }

        GbdtRegressor {
            config,
            base_prediction,
            trees,
            feature_importance,
            num_features,
        }
    }

    fn fit_tree(
        config: &GbdtConfig,
        binner: &Binner,
        binned: &[Vec<u16>],
        residuals: &[f64],
        importance: &mut [f64],
    ) -> RegressionTree {
        let all_indices: Vec<u32> = (0..binned.len() as u32).collect();
        let root_value = mean(residuals, &all_indices);
        let mut nodes = vec![Node::Leaf { value: root_value }];
        let mut heap: BinaryHeap<GrowthEntry> = BinaryHeap::new();
        if let Some(cand) = Self::best_split(config, binner, binned, residuals, &all_indices) {
            heap.push(GrowthEntry {
                gain: cand.gain,
                node_index: 0,
                candidate: cand,
            });
        }
        let mut leaves = 1;
        while leaves < config.max_leaves {
            let Some(entry) = heap.pop() else { break };
            if entry.gain < config.min_gain {
                break;
            }
            let cand = entry.candidate;
            let left_index = nodes.len();
            let right_index = nodes.len() + 1;
            nodes.push(Node::Leaf {
                value: cand.left_value,
            });
            nodes.push(Node::Leaf {
                value: cand.right_value,
            });
            nodes[entry.node_index] = Node::Split {
                feature: cand.feature,
                threshold: binner.threshold(cand.feature, cand.bin),
                left: left_index,
                right: right_index,
            };
            importance[cand.feature] += cand.gain;
            leaves += 1;

            for (child_index, indices) in [
                (left_index, &cand.left_indices),
                (right_index, &cand.right_indices),
            ] {
                if indices.len() >= 2 * config.min_samples_leaf {
                    if let Some(child_cand) =
                        Self::best_split(config, binner, binned, residuals, indices)
                    {
                        heap.push(GrowthEntry {
                            gain: child_cand.gain,
                            node_index: child_index,
                            candidate: child_cand,
                        });
                    }
                }
            }
        }
        RegressionTree { nodes }
    }

    /// Find the best histogram split over the given example indices.
    fn best_split(
        config: &GbdtConfig,
        binner: &Binner,
        binned: &[Vec<u16>],
        residuals: &[f64],
        indices: &[u32],
    ) -> Option<SplitCandidate> {
        let n = indices.len();
        if n < 2 * config.min_samples_leaf {
            return None;
        }
        let total_sum: f64 = indices.iter().map(|&i| residuals[i as usize]).sum();
        let parent_score = total_sum * total_sum / n as f64;

        let mut best: Option<(f64, usize, usize)> = None; // (gain, feature, bin)
        #[allow(clippy::needless_range_loop)]
        for f in 0..binner.edges.len() {
            let bins = binner.num_bins(f);
            if bins < 2 {
                continue;
            }
            let mut sums = vec![0.0f64; bins];
            let mut counts = vec![0u32; bins];
            for &i in indices {
                let b = binned[i as usize][f] as usize;
                sums[b] += residuals[i as usize];
                counts[b] += 1;
            }
            let mut left_sum = 0.0;
            let mut left_count = 0u32;
            // A split after bin b sends bins [0, b] left.
            for b in 0..bins - 1 {
                left_sum += sums[b];
                left_count += counts[b];
                let right_count = n as u32 - left_count;
                if (left_count as usize) < config.min_samples_leaf
                    || (right_count as usize) < config.min_samples_leaf
                {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let score = left_sum * left_sum / left_count as f64
                    + right_sum * right_sum / right_count as f64;
                let gain = score - parent_score;
                if best
                    .map(|(g, _, _)| gain > g)
                    .unwrap_or(gain > config.min_gain)
                {
                    best = Some((gain, f, b));
                }
            }
        }

        let (gain, feature, bin) = best?;
        if gain <= config.min_gain {
            return None;
        }
        let mut left_indices = Vec::new();
        let mut right_indices = Vec::new();
        for &i in indices {
            if (binned[i as usize][feature] as usize) <= bin {
                left_indices.push(i);
            } else {
                right_indices.push(i);
            }
        }
        let left_value = mean(residuals, &left_indices);
        let right_value = mean(residuals, &right_indices);
        Some(SplitCandidate {
            gain,
            feature,
            bin,
            left_indices,
            right_indices,
            left_value,
            right_value,
        })
    }

    /// Predict the response for one feature row.
    ///
    /// Row length is validated **once** here, at the ensemble boundary:
    /// full-length rows (covering every feature seen in training) take a
    /// branch-free indexing path through all trees. Shorter rows fall back
    /// to the legacy per-node semantics where a missing feature reads as
    /// `0.0` (see [`RegressionTree::predict`]); both paths produce
    /// bit-identical results whenever both apply.
    ///
    /// # Panics
    ///
    /// Panics (index out of bounds) on a model whose trees reference a
    /// feature index at or beyond `num_features`. [`GbdtRegressor::fit`]
    /// never produces such a model; only a corrupt or hand-edited
    /// deserialized model can (the same invariant is hard-asserted with a
    /// clearer message by [`crate::compiled::CompiledGbdt::compile`]).
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut pred = self.base_prediction;
        if features.len() >= self.num_features {
            for tree in &self.trees {
                pred += self.config.learning_rate * tree.predict_full(features);
            }
        } else {
            for tree in &self.trees {
                pred += self.config.learning_rate * tree.predict(features);
            }
        }
        pred
    }

    /// The trained trees (for the compiled engine).
    pub(crate) fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// The constant prediction every tree's contribution is added to.
    pub(crate) fn base_prediction(&self) -> f64 {
        self.base_prediction
    }

    /// Number of trees in the ensemble.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features the model was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The configuration used for training.
    pub fn config(&self) -> &GbdtConfig {
        &self.config
    }

    /// Split-score feature importance, normalised to sum to 1 (all zeros if
    /// no splits were made).
    pub fn feature_importance(&self) -> Vec<f64> {
        let total: f64 = self.feature_importance.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.feature_importance.len()];
        }
        self.feature_importance.iter().map(|g| g / total).collect()
    }
}

fn mean(values: &[f64], indices: &[u32]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    indices.iter().map(|&i| values[i as usize]).sum::<f64>() / indices.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn synthetic_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f64 = rng.gen_range(0.0..10.0);
            let x1: f64 = rng.gen_range(0.0..5.0);
            let x2: f64 = rng.gen_range(0.0..1.0); // irrelevant
            let y = if x0 > 5.0 { 3.0 } else { 1.0 } + 0.5 * x1;
            rows.push(vec![x0, x1, x2]);
            labels.push(y);
        }
        (rows, labels)
    }

    #[test]
    fn learns_a_step_function() {
        let (rows, labels) = synthetic_data(2000, 1);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let model = GbdtRegressor::fit(GbdtConfig::fast(), &refs, &labels);
        assert_eq!(model.tree_count(), GbdtConfig::fast().num_trees);
        assert_eq!(model.num_features(), 3);

        // In-sample error should be small.
        let mse: f64 = rows
            .iter()
            .zip(&labels)
            .map(|(r, y)| (model.predict(r) - y).powi(2))
            .sum::<f64>()
            / labels.len() as f64;
        assert!(mse < 0.05, "mse too high: {mse}");
    }

    #[test]
    fn feature_importance_identifies_relevant_features() {
        let (rows, labels) = synthetic_data(2000, 2);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let model = GbdtRegressor::fit(GbdtConfig::fast(), &refs, &labels);
        let imp = model.feature_importance();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // x0 dominates, x2 is irrelevant.
        assert!(imp[0] > 0.5, "importance {imp:?}");
        assert!(imp[2] < 0.05, "importance {imp:?}");
    }

    #[test]
    fn constant_labels_yield_constant_prediction() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let labels = vec![7.0; 3];
        let model = GbdtRegressor::fit(GbdtConfig::fast(), &refs, &labels);
        for r in &rows {
            assert!((model.predict(r) - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn respects_max_leaves() {
        let (rows, labels) = synthetic_data(500, 3);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let config = GbdtConfig {
            num_trees: 5,
            max_leaves: 4,
            min_samples_leaf: 5,
            ..GbdtConfig::default()
        };
        let model = GbdtRegressor::fit(config, &refs, &labels);
        for tree in &model.trees {
            assert!(tree.leaf_count() <= 4);
        }
    }

    #[test]
    #[should_panic(expected = "rows/labels length mismatch")]
    fn mismatched_lengths_panic() {
        let rows = [vec![1.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let _ = GbdtRegressor::fit(GbdtConfig::fast(), &refs, &[1.0, 2.0]);
    }

    #[test]
    fn predict_handles_short_rows() {
        let (rows, labels) = synthetic_data(200, 4);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let model = GbdtRegressor::fit(GbdtConfig::fast(), &refs, &labels);
        // Missing features are treated as 0.0 rather than panicking.
        let _ = model.predict(&[1.0]);
    }
}
