//! Training-data construction: labels, capping and uptime augmentation.
//!
//! The paper (§3) turns a regression model into a survival-style model by
//! augmenting every training example with several uptime values (12.5 %,
//! 25 %, ... of the original lifetime) and training on the remaining
//! lifetime `E(T_r | T_u)` in the log10 domain, with lifetimes capped at
//! 7 days (Appendix B).

use crate::features::FeatureSchema;
use crate::LIFETIME_CAP;
use lava_core::time::Duration;
use lava_core::vm::VmSpec;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The uptime fractions used for augmentation. The first entry (0.0) is the
/// scheduling-time example; the rest simulate repredictions at 12.5 %, 25 %,
/// 50 % and 75 % of the true lifetime.
pub const AUGMENTATION_FRACTIONS: [f64; 5] = [0.0, 0.125, 0.25, 0.5, 0.75];

/// One labelled training example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Encoded feature vector (see [`crate::features::FEATURE_NAMES`]).
    pub features: Vec<f64>,
    /// Label: log10 of the remaining lifetime in seconds (capped).
    pub label: f64,
    /// Uncapped ground-truth remaining lifetime, for evaluation.
    pub remaining: Duration,
    /// Total (uncapped) lifetime of the source VM, for threshold metrics.
    pub total_lifetime: Duration,
    /// The uptime at which this example was generated.
    pub uptime: Duration,
}

/// A labelled dataset plus the feature schema that produced it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// The examples.
    pub examples: Vec<Example>,
    /// The schema used to encode them (needed at inference time).
    pub schema: FeatureSchema,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True if the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Feature matrix view (row major).
    pub fn feature_rows(&self) -> Vec<&[f64]> {
        self.examples
            .iter()
            .map(|e| e.features.as_slice())
            .collect()
    }

    /// Label vector.
    pub fn labels(&self) -> Vec<f64> {
        self.examples.iter().map(|e| e.label).collect()
    }

    /// Deterministically shuffle and split into (train, test) by fraction.
    ///
    /// `train_fraction` is clamped to `[0, 1]`.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let mut indices: Vec<usize> = (0..self.examples.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let cut = ((self.examples.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
        let cut = cut.min(self.examples.len());
        let take = |idx: &[usize]| Dataset {
            examples: idx.iter().map(|&i| self.examples[i].clone()).collect(),
            schema: self.schema.clone(),
        };
        (take(&indices[..cut]), take(&indices[cut..]))
    }
}

/// Builds a [`Dataset`] from `(spec, lifetime)` observations.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    observations: Vec<(VmSpec, Duration)>,
    augment: bool,
    cap: Duration,
}

impl Default for DatasetBuilder {
    fn default() -> Self {
        DatasetBuilder::new()
    }
}

impl DatasetBuilder {
    /// Create an empty builder with the paper's defaults (uptime
    /// augmentation on, 7-day cap).
    pub fn new() -> DatasetBuilder {
        DatasetBuilder {
            observations: Vec::new(),
            augment: true,
            cap: LIFETIME_CAP,
        }
    }

    /// Enable or disable uptime augmentation (disabled = one-shot training,
    /// the "no reprediction" ablation of Fig. 16).
    pub fn augment(mut self, augment: bool) -> Self {
        self.augment = augment;
        self
    }

    /// Override the lifetime cap.
    pub fn cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Add one completed VM observation.
    pub fn push(&mut self, spec: VmSpec, lifetime: Duration) {
        self.observations.push((spec, lifetime));
    }

    /// Add many observations.
    pub fn extend<I: IntoIterator<Item = (VmSpec, Duration)>>(&mut self, iter: I) {
        self.observations.extend(iter);
    }

    /// Number of raw observations added so far.
    pub fn observation_count(&self) -> usize {
        self.observations.len()
    }

    /// Build the dataset: fit the schema, apply augmentation, cap labels and
    /// encode features.
    pub fn build(&self) -> Dataset {
        let schema = FeatureSchema::fit(self.observations.iter().map(|(s, _)| s));
        let fractions: &[f64] = if self.augment {
            &AUGMENTATION_FRACTIONS
        } else {
            &AUGMENTATION_FRACTIONS[..1]
        };
        let mut examples = Vec::with_capacity(self.observations.len() * fractions.len());
        for (spec, lifetime) in &self.observations {
            for &fraction in fractions {
                let uptime = Duration::from_secs_f64(lifetime.as_secs() as f64 * fraction);
                let remaining = *lifetime - uptime;
                let capped = remaining.min(self.cap);
                examples.push(Example {
                    features: schema.encode(spec, uptime),
                    label: capped.log10_secs(),
                    remaining,
                    total_lifetime: *lifetime,
                    uptime,
                });
            }
        }
        Dataset { examples, schema }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::resources::Resources;

    fn spec() -> VmSpec {
        VmSpec::builder(Resources::cores_gib(2, 8))
            .category(1)
            .build()
    }

    #[test]
    fn augmentation_multiplies_examples() {
        let mut b = DatasetBuilder::new();
        for _ in 0..10 {
            b.push(spec(), Duration::from_hours(10));
        }
        assert_eq!(b.observation_count(), 10);
        let ds = b.build();
        assert_eq!(ds.len(), 10 * AUGMENTATION_FRACTIONS.len());
        assert!(!ds.is_empty());

        let one_shot = DatasetBuilder::new().augment(false);
        let mut one_shot = one_shot;
        one_shot.push(spec(), Duration::from_hours(10));
        assert_eq!(one_shot.build().len(), 1);
    }

    #[test]
    fn labels_are_log10_of_capped_remaining() {
        let mut b = DatasetBuilder::new();
        // 20-day VM: capped at 7 days for the uptime=0 example.
        b.push(spec(), Duration::from_days(20));
        let ds = b.build();
        let first = &ds.examples[0];
        assert_eq!(first.uptime, Duration::ZERO);
        assert!((first.label - (LIFETIME_CAP.as_secs() as f64).log10()).abs() < 1e-9);
        assert_eq!(first.total_lifetime, Duration::from_days(20));
        // The 75% example still has 5 days remaining (under the cap).
        let last = ds
            .examples
            .iter()
            .find(|e| e.uptime == Duration::from_days(15))
            .unwrap();
        assert!((last.label - (Duration::from_days(5).as_secs() as f64).log10()).abs() < 1e-9);
    }

    #[test]
    fn split_partitions_examples() {
        let mut b = DatasetBuilder::new();
        for i in 0..100 {
            b.push(spec(), Duration::from_hours(1 + i % 20));
        }
        let ds = b.build();
        let (train, test) = ds.split(0.8, 42);
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(train.len(), (ds.len() as f64 * 0.8).round() as usize);
        // Deterministic given the seed.
        let (train2, _) = ds.split(0.8, 42);
        assert_eq!(train.labels(), train2.labels());
    }

    #[test]
    fn feature_rows_align_with_labels() {
        let mut b = DatasetBuilder::new();
        b.push(spec(), Duration::from_hours(4));
        let ds = b.build();
        assert_eq!(ds.feature_rows().len(), ds.labels().len());
    }
}
