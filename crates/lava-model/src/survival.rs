//! Survival-analysis models: Kaplan–Meier curves, empirical lifetime
//! distributions with conditional expectations, and a linear Cox
//! proportional-hazards baseline.
//!
//! The paper's key modelling insight (§3, Fig. 2) is to treat VM lifetimes
//! as *distributions* and compute the conditional expected remaining
//! lifetime `E(T_r | T_u)` — "given the VM has been running for `T_u`, how
//! much longer will it run?". [`EmpiricalDistribution`] implements exactly
//! that calculation; [`KaplanMeier`] adds right-censoring support (VMs still
//! running at the end of the trace); [`CoxModel`] is the linear survival
//! baseline of Appendix B (Table 4).

use lava_core::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An empirical lifetime distribution built from completed lifetimes.
///
/// Stores the sorted lifetimes (in seconds) and answers CDF / quantile /
/// conditional-expectation queries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalDistribution {
    /// Sorted observed lifetimes, in seconds.
    sorted_secs: Vec<u64>,
}

impl EmpiricalDistribution {
    /// Build from an iterator of observed lifetimes.
    pub fn from_lifetimes<I: IntoIterator<Item = Duration>>(lifetimes: I) -> EmpiricalDistribution {
        let mut sorted_secs: Vec<u64> = lifetimes.into_iter().map(|d| d.as_secs()).collect();
        sorted_secs.sort_unstable();
        EmpiricalDistribution { sorted_secs }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted_secs.len()
    }

    /// True if there are no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted_secs.is_empty()
    }

    /// Empirical CDF: fraction of lifetimes `<= t`.
    pub fn cdf(&self, t: Duration) -> f64 {
        if self.sorted_secs.is_empty() {
            return 0.0;
        }
        let idx = self.sorted_secs.partition_point(|&x| x <= t.as_secs());
        idx as f64 / self.sorted_secs.len() as f64
    }

    /// Survival function: fraction of lifetimes `> t`.
    pub fn survival(&self, t: Duration) -> f64 {
        1.0 - self.cdf(t)
    }

    /// The `q`-quantile of the lifetime distribution (`q` clamped to
    /// `[0, 1]`). Returns zero for an empty distribution.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.sorted_secs.is_empty() {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted_secs.len() - 1) as f64 * q).round() as usize;
        Duration(self.sorted_secs[idx])
    }

    /// Mean lifetime.
    pub fn mean(&self) -> Duration {
        if self.sorted_secs.is_empty() {
            return Duration::ZERO;
        }
        let sum: u128 = self.sorted_secs.iter().map(|&s| s as u128).sum();
        Duration((sum / self.sorted_secs.len() as u128) as u64)
    }

    /// Conditional expected **remaining** lifetime given the VM has already
    /// run for `uptime`: `E(T - uptime | T > uptime)`.
    ///
    /// If no observed lifetime exceeds `uptime` (the VM has outlived every
    /// training example), falls back to the largest observed remaining tail
    /// (zero for an empty distribution) — the caller typically treats such
    /// VMs as long-lived.
    pub fn expected_remaining(&self, uptime: Duration) -> Duration {
        if self.sorted_secs.is_empty() {
            return Duration::ZERO;
        }
        let cut = self.sorted_secs.partition_point(|&x| x <= uptime.as_secs());
        if cut >= self.sorted_secs.len() {
            return Duration::ZERO;
        }
        let tail = &self.sorted_secs[cut..];
        let sum: u128 = tail.iter().map(|&s| (s - uptime.as_secs()) as u128).sum();
        Duration((sum / tail.len() as u128) as u64)
    }
}

/// A Kaplan–Meier survival-curve estimator with right censoring.
///
/// Observations are `(time, event)` pairs where `event = true` means the VM
/// exited at `time` and `event = false` means it was still running when the
/// trace ended (censored).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KaplanMeier {
    /// Step function: (time_secs, survival probability just after that
    /// time), ascending in time.
    steps: Vec<(u64, f64)>,
    num_observations: usize,
}

impl KaplanMeier {
    /// Fit the estimator from `(lifetime, observed_exit)` pairs.
    pub fn fit<I: IntoIterator<Item = (Duration, bool)>>(observations: I) -> KaplanMeier {
        let mut obs: Vec<(u64, bool)> = observations
            .into_iter()
            .map(|(d, e)| (d.as_secs(), e))
            .collect();
        obs.sort_unstable();
        let n = obs.len();

        // Group events by time.
        let mut deaths: BTreeMap<u64, usize> = BTreeMap::new();
        let mut censored: BTreeMap<u64, usize> = BTreeMap::new();
        for (t, event) in &obs {
            if *event {
                *deaths.entry(*t).or_insert(0) += 1;
            } else {
                *censored.entry(*t).or_insert(0) += 1;
            }
        }

        let mut at_risk = n as f64;
        let mut survival = 1.0;
        let mut steps = Vec::new();
        let mut times: Vec<u64> = deaths.keys().chain(censored.keys()).copied().collect();
        times.sort_unstable();
        times.dedup();
        for t in times {
            let d = *deaths.get(&t).unwrap_or(&0) as f64;
            if d > 0.0 && at_risk > 0.0 {
                survival *= 1.0 - d / at_risk;
                steps.push((t, survival));
            }
            at_risk -= d + *censored.get(&t).unwrap_or(&0) as f64;
        }
        KaplanMeier {
            steps,
            num_observations: n,
        }
    }

    /// Number of observations used to fit the curve.
    pub fn observation_count(&self) -> usize {
        self.num_observations
    }

    /// Survival probability at time `t` (probability of living longer than
    /// `t`).
    pub fn survival(&self, t: Duration) -> f64 {
        let mut s = 1.0;
        for &(time, surv) in &self.steps {
            if time <= t.as_secs() {
                s = surv;
            } else {
                break;
            }
        }
        s
    }

    /// Median survival time: the first time at which survival drops to 0.5
    /// or below, if it ever does.
    pub fn median(&self) -> Option<Duration> {
        self.steps
            .iter()
            .find(|(_, s)| *s <= 0.5)
            .map(|&(t, _)| Duration(t))
    }

    /// Expected remaining lifetime at `uptime`, computed by integrating the
    /// conditional survival curve (restricted to the observed horizon).
    pub fn expected_remaining(&self, uptime: Duration) -> Duration {
        let s_u = self.survival(uptime);
        if s_u <= 0.0 || self.steps.is_empty() {
            return Duration::ZERO;
        }
        // Integrate S(t)/S(u) for t from uptime to the last observed time
        // using the step representation.
        let mut total = 0.0;
        let mut prev_t = uptime.as_secs();
        let mut prev_s = s_u;
        for &(t, s) in &self.steps {
            if t <= uptime.as_secs() {
                continue;
            }
            total += (t - prev_t) as f64 * (prev_s / s_u);
            prev_t = t;
            prev_s = s;
        }
        Duration(total.round() as u64)
    }
}

/// A stratified Kaplan–Meier model: one survival curve per stratum key
/// (e.g. per VM category), the "lookup table of survival curves" the paper's
/// production experience section describes as their first model.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StratifiedKaplanMeier {
    curves: BTreeMap<u64, KaplanMeier>,
    overall: KaplanMeier,
}

impl StratifiedKaplanMeier {
    /// Fit from `(stratum, lifetime, observed_exit)` triples.
    pub fn fit<I: IntoIterator<Item = (u64, Duration, bool)>>(observations: I) -> Self {
        let mut per_stratum: BTreeMap<u64, Vec<(Duration, bool)>> = BTreeMap::new();
        let mut all = Vec::new();
        for (stratum, lifetime, event) in observations {
            per_stratum
                .entry(stratum)
                .or_default()
                .push((lifetime, event));
            all.push((lifetime, event));
        }
        StratifiedKaplanMeier {
            curves: per_stratum
                .into_iter()
                .map(|(k, v)| (k, KaplanMeier::fit(v)))
                .collect(),
            overall: KaplanMeier::fit(all),
        }
    }

    /// The curve for a stratum, falling back to the overall curve.
    pub fn curve(&self, stratum: u64) -> &KaplanMeier {
        self.curves.get(&stratum).unwrap_or(&self.overall)
    }

    /// Number of strata with a dedicated curve.
    pub fn stratum_count(&self) -> usize {
        self.curves.len()
    }

    /// Expected remaining lifetime for a stratum at the given uptime.
    pub fn expected_remaining(&self, stratum: u64, uptime: Duration) -> Duration {
        self.curve(stratum).expected_remaining(uptime)
    }
}

/// A linear Cox proportional-hazards model trained by gradient ascent on the
/// Breslow partial likelihood. Used only as the Appendix B baseline
/// (Table 4); the production model is the GBDT.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoxModel {
    /// Feature coefficients (the linear risk score is `beta . x`).
    coefficients: Vec<f64>,
    /// Per-feature means used to centre inputs.
    means: Vec<f64>,
    /// Per-feature standard deviations used to scale inputs.
    stds: Vec<f64>,
}

/// Hyperparameters for [`CoxModel::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoxConfig {
    /// Number of gradient-ascent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for CoxConfig {
    fn default() -> Self {
        CoxConfig {
            iterations: 200,
            learning_rate: 0.05,
            l2: 1e-3,
        }
    }
}

impl CoxModel {
    /// Fit the model on `(features, lifetime)` rows. All lifetimes are
    /// treated as observed events (our traces are complete).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or lengths mismatch.
    pub fn fit(config: CoxConfig, rows: &[&[f64]], lifetimes: &[Duration]) -> CoxModel {
        assert_eq!(
            rows.len(),
            lifetimes.len(),
            "rows/lifetimes length mismatch"
        );
        assert!(!rows.is_empty(), "cannot train on an empty dataset");
        let p = rows[0].len();
        let n = rows.len();

        // Standardise features.
        let mut means = vec![0.0; p];
        let mut stds = vec![0.0; p];
        for j in 0..p {
            let sum: f64 = rows.iter().map(|r| r[j]).sum();
            means[j] = sum / n as f64;
            let var: f64 = rows.iter().map(|r| (r[j] - means[j]).powi(2)).sum::<f64>() / n as f64;
            stds[j] = var.sqrt().max(1e-9);
        }
        let x: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| (0..p).map(|j| (r[j] - means[j]) / stds[j]).collect())
            .collect();

        // Sort by descending lifetime so that the risk set of example i is
        // the prefix [0, i] when walking in ascending event-time order.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| lifetimes[i].as_secs());

        let mut beta = vec![0.0; p];
        for _ in 0..config.iterations {
            // Risk scores.
            let scores: Vec<f64> = x
                .iter()
                .map(|xi| xi.iter().zip(&beta).map(|(a, b)| a * b).sum::<f64>())
                .map(|s: f64| s.clamp(-30.0, 30.0).exp())
                .collect();

            // Suffix sums over the event-time ordering: risk set of the
            // k-th smallest lifetime is everything with lifetime >= it.
            let mut suffix_score = vec![0.0; n + 1];
            let mut suffix_weighted = vec![vec![0.0; p]; n + 1];
            for k in (0..n).rev() {
                let i = order[k];
                suffix_score[k] = suffix_score[k + 1] + scores[i];
                for j in 0..p {
                    suffix_weighted[k][j] = suffix_weighted[k + 1][j] + scores[i] * x[i][j];
                }
            }

            let mut grad = vec![0.0; p];
            for k in 0..n {
                let i = order[k];
                let denom = suffix_score[k].max(1e-12);
                for j in 0..p {
                    grad[j] += x[i][j] - suffix_weighted[k][j] / denom;
                }
            }
            for j in 0..p {
                grad[j] = grad[j] / n as f64 - config.l2 * beta[j];
                beta[j] += config.learning_rate * grad[j];
            }
        }

        CoxModel {
            coefficients: beta,
            means,
            stds,
        }
    }

    /// The linear risk score of a feature row. Higher risk means an earlier
    /// expected exit (shorter lifetime).
    pub fn risk_score(&self, features: &[f64]) -> f64 {
        self.coefficients
            .iter()
            .enumerate()
            .map(|(j, b)| {
                let x = features.get(j).copied().unwrap_or(0.0);
                b * (x - self.means[j]) / self.stds[j]
            })
            .sum()
    }

    /// The fitted coefficients (standardised feature space).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hours(h: u64) -> Duration {
        Duration::from_hours(h)
    }

    #[test]
    fn empirical_cdf_and_quantiles() {
        let d = EmpiricalDistribution::from_lifetimes(vec![hours(1), hours(2), hours(3), hours(4)]);
        assert_eq!(d.len(), 4);
        assert!((d.cdf(hours(2)) - 0.5).abs() < 1e-12);
        assert!((d.survival(hours(2)) - 0.5).abs() < 1e-12);
        assert_eq!(d.quantile(0.0), hours(1));
        assert_eq!(d.quantile(1.0), hours(4));
        assert_eq!(d.mean(), Duration::from_mins(150));
    }

    #[test]
    fn empirical_conditional_expectation_matches_paper_intuition() {
        // Bi-modal: many short (1h) and some long (168h) lifetimes. After
        // surviving 2h, the expectation should jump to the long mode.
        let mut lifetimes = vec![hours(1); 90];
        lifetimes.extend(vec![hours(168); 10]);
        let d = EmpiricalDistribution::from_lifetimes(lifetimes);
        let at_start = d.expected_remaining(Duration::ZERO);
        let after_2h = d.expected_remaining(hours(2));
        assert!(at_start < hours(20));
        assert_eq!(after_2h, hours(166));
        assert!(after_2h > at_start);
    }

    #[test]
    fn empirical_empty_and_exhausted() {
        let d = EmpiricalDistribution::default();
        assert!(d.is_empty());
        assert_eq!(d.cdf(hours(1)), 0.0);
        assert_eq!(d.expected_remaining(hours(1)), Duration::ZERO);
        assert_eq!(d.quantile(0.5), Duration::ZERO);
        assert_eq!(d.mean(), Duration::ZERO);

        let d = EmpiricalDistribution::from_lifetimes(vec![hours(1)]);
        assert_eq!(d.expected_remaining(hours(2)), Duration::ZERO);
    }

    #[test]
    fn kaplan_meier_no_censoring_matches_empirical() {
        let lifetimes = [hours(1), hours(2), hours(3), hours(4)];
        let km = KaplanMeier::fit(lifetimes.iter().map(|&l| (l, true)));
        assert_eq!(km.observation_count(), 4);
        assert!((km.survival(hours(2)) - 0.5).abs() < 1e-9);
        assert!((km.survival(hours(4)) - 0.0).abs() < 1e-9);
        assert_eq!(km.median(), Some(hours(2)));
    }

    #[test]
    fn kaplan_meier_censoring_raises_survival() {
        // Same exit times, but half the long observations are censored: the
        // curve should not drop to zero.
        let km = KaplanMeier::fit(vec![
            (hours(1), true),
            (hours(2), true),
            (hours(3), false),
            (hours(4), false),
        ]);
        assert!(km.survival(hours(10)) > 0.0);
        assert_eq!(km.median(), Some(hours(2)));
    }

    #[test]
    fn kaplan_meier_expected_remaining_decreases_then_restricts() {
        let lifetimes: Vec<Duration> = (1..=10).map(hours).collect();
        let km = KaplanMeier::fit(lifetimes.iter().map(|&l| (l, true)));
        let e0 = km.expected_remaining(Duration::ZERO);
        let e5 = km.expected_remaining(hours(5));
        assert!(e0 > e5);
        assert!(e5 > Duration::ZERO);
        assert_eq!(km.expected_remaining(hours(100)), Duration::ZERO);
    }

    #[test]
    fn stratified_km_falls_back_to_overall() {
        let model = StratifiedKaplanMeier::fit(vec![
            (1, hours(1), true),
            (1, hours(2), true),
            (2, hours(100), true),
            (2, hours(120), true),
        ]);
        assert_eq!(model.stratum_count(), 2);
        assert!(model.expected_remaining(1, Duration::ZERO) < hours(5));
        assert!(model.expected_remaining(2, Duration::ZERO) > hours(50));
        // Unknown stratum uses the overall curve.
        let overall = model.expected_remaining(99, Duration::ZERO);
        assert!(overall > Duration::ZERO);
    }

    #[test]
    fn cox_learns_sign_of_risk() {
        // Feature x strongly determines lifetime: higher x → longer life →
        // lower hazard → negative coefficient.
        let mut rows = Vec::new();
        let mut lifetimes = Vec::new();
        for i in 0..200u64 {
            let x = (i % 10) as f64;
            rows.push(vec![x, 1.0]);
            lifetimes.push(Duration::from_hours(1 + (i % 10) * 10));
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let model = CoxModel::fit(CoxConfig::default(), &refs, &lifetimes);
        assert!(model.coefficients()[0] < 0.0, "{:?}", model.coefficients());
        // Risk of a short-lived (x=0) VM should exceed risk of a long-lived one.
        assert!(model.risk_score(&[0.0, 1.0]) > model.risk_score(&[9.0, 1.0]));
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone(lifetimes in proptest::collection::vec(0u64..1_000_000, 1..100), a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let d = EmpiricalDistribution::from_lifetimes(lifetimes.into_iter().map(Duration));
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(d.cdf(Duration(lo)) <= d.cdf(Duration(hi)));
            prop_assert!(d.cdf(Duration(hi)) <= 1.0);
        }

        #[test]
        fn prop_km_survival_monotone_decreasing(lifetimes in proptest::collection::vec(1u64..1_000_000, 1..100)) {
            let km = KaplanMeier::fit(lifetimes.iter().map(|&l| (Duration(l), true)));
            let mut prev = 1.0;
            for t in [0u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
                let s = km.survival(Duration(t));
                prop_assert!(s <= prev + 1e-12);
                prop_assert!((0.0..=1.0).contains(&s));
                prev = s;
            }
        }
    }
}
