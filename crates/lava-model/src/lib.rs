//! Lifetime prediction models for LAVA.
//!
//! The paper (§3, Appendix A/B) predicts the **remaining lifetime** of a VM
//! as a function of its request-time features and its uptime so far, turning
//! a regression model into a survival-style model via training-set
//! augmentation. This crate provides, from scratch:
//!
//! * [`features`] — the Appendix A feature schema, rare-category collapsing
//!   and numeric encoding,
//! * [`dataset`] — labelled example construction, log10 labels, 7-day
//!   capping and uptime augmentation,
//! * [`gbdt`] — gradient-boosted regression trees (best-first growth,
//!   histogram splits, split-score feature importance),
//! * [`compiled`] — the flat, structure-of-arrays inference engine the
//!   paper compiles into the production binary (§5 / Fig. 8): bit-identical
//!   to the reference trees, allocation-free, with batched prediction,
//! * [`survival`] — Kaplan–Meier curves, empirical lifetime distributions
//!   and conditional expectations `E(T_r | T_u)`, plus a linear Cox
//!   proportional-hazards baseline,
//! * [`nn`] — a small MLP regressor (the Keras baseline stand-in),
//! * [`metrics`] — precision/recall/F1, concordance index and log-domain
//!   error statistics,
//! * [`predictor`] — the [`predictor::LifetimePredictor`] trait consumed by
//!   the scheduler, with GBDT, distribution, oracle and noisy-oracle
//!   implementations,
//! * [`adaptive`] — adaptive model management: the hot-swappable predictor
//!   seam, degraded (stale/biased) variants and the online quantile
//!   recalibration fit used by the simulation's incident layer.
//!
//! # Example
//!
//! ```
//! use lava_core::prelude::*;
//! use lava_model::predictor::{LifetimePredictor, OraclePredictor};
//!
//! let spec = VmSpec::builder(Resources::cores_gib(2, 8)).build();
//! let vm = Vm::new(VmId(0), spec, SimTime::ZERO, Duration::from_hours(5));
//! let oracle = OraclePredictor::new();
//! let remaining = oracle.predict_remaining(&vm, SimTime::ZERO + Duration::from_hours(2));
//! assert_eq!(remaining, Duration::from_hours(3));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod compiled;
pub mod dataset;
pub mod features;
pub mod gbdt;
pub mod metrics;
pub mod nn;
pub mod predictor;
pub mod survival;

/// The 7-day lifetime cap applied to labels and predictions (Appendix B):
/// "all VMs with a lifetime longer than 7 days are capped".
pub const LIFETIME_CAP: lava_core::time::Duration = lava_core::time::Duration(7 * 86_400);

/// The short/long classification threshold used for precision/recall/F1
/// throughout the paper: 7 days (168 hours).
pub const LONG_LIVED_THRESHOLD: lava_core::time::Duration = lava_core::time::Duration(7 * 86_400);
