//! The [`LifetimePredictor`] interface consumed by the scheduler, and its
//! implementations.
//!
//! The scheduler only ever asks one question (§3): *given this VM and the
//! current time, what is its expected remaining lifetime?* Asking at
//! creation time (uptime 0) yields the initial prediction; asking later is a
//! **reprediction** that conditions on the observed uptime.
//!
//! Implementations:
//!
//! * [`GbdtPredictor`] — the production model: a from-scratch GBDT trained on
//!   log10 remaining lifetime with uptime augmentation,
//! * [`DistributionPredictor`] — per-category empirical distributions with
//!   conditional expectation `E(T_r | T_u)` (the survival-analysis view of
//!   Fig. 2),
//! * [`OraclePredictor`] — perfect predictions from trace ground truth,
//! * [`NoisyOraclePredictor`] — the accuracy dial of Appendix G.1: a fraction
//!   of VMs receive near-perfect predictions, the rest a large log-domain
//!   error,
//! * [`ConstantPredictor`] — a fixed prediction, the "no lifetime knowledge"
//!   strawman used in tests and ablations.

use crate::compiled::CompiledGbdt;
use crate::dataset::Dataset;
use crate::features::{FeatureRow, FeatureSchema};
use crate::gbdt::{GbdtConfig, GbdtRegressor};
use crate::survival::EmpiricalDistribution;
use crate::LIFETIME_CAP;
use lava_core::time::{Duration, SimTime};
use lava_core::vm::{Vm, VmSpec};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Predicts the expected remaining lifetime of a VM.
///
/// Implementations must be cheap to call: the scheduler repredicts VMs on
/// every scoring pass (the paper's production model runs in ~9 µs).
pub trait LifetimePredictor: Send + Sync {
    /// Expected remaining lifetime of `vm` at `now`.
    ///
    /// `now` earlier than the VM's creation time is treated as uptime zero.
    fn predict_remaining(&self, vm: &Vm, now: SimTime) -> Duration;

    /// Short name used in reports and experiment output.
    fn name(&self) -> &'static str;

    /// The initial (scheduling-time) prediction of the VM's total lifetime.
    fn predict_at_creation(&self, vm: &Vm) -> Duration {
        self.predict_remaining(vm, vm.created_at())
    }

    /// Batched reprediction: predict the remaining lifetime of every VM
    /// yielded by `vms` at `now`, calling `sink(vm, remaining)` once per
    /// VM in iteration order.
    ///
    /// The default implementation is one virtual dispatch per VM and is
    /// exactly equivalent to calling [`predict_remaining`] in a loop.
    /// Implementations with per-call setup cost (the compiled GBDT)
    /// override it to amortise that cost across the batch — host
    /// repredictions at scoring time go through this entry point. Every
    /// override must produce bit-identical values to the per-VM path.
    ///
    /// [`predict_remaining`]: LifetimePredictor::predict_remaining
    fn predict_remaining_batch<'a>(
        &self,
        vms: &mut dyn Iterator<Item = &'a Vm>,
        now: SimTime,
        sink: &mut dyn FnMut(&'a Vm, Duration),
    ) {
        for vm in vms {
            sink(vm, self.predict_remaining(vm, now));
        }
    }
}

impl<T: LifetimePredictor + ?Sized> LifetimePredictor for Arc<T> {
    fn predict_remaining(&self, vm: &Vm, now: SimTime) -> Duration {
        (**self).predict_remaining(vm, now)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn predict_remaining_batch<'a>(
        &self,
        vms: &mut dyn Iterator<Item = &'a Vm>,
        now: SimTime,
        sink: &mut dyn FnMut(&'a Vm, Duration),
    ) {
        (**self).predict_remaining_batch(vms, now, sink)
    }
}

/// Convert a log10(seconds) model output into a capped [`Duration`].
pub fn duration_from_log10(log10_secs: f64, cap: Duration) -> Duration {
    if !log10_secs.is_finite() {
        return cap;
    }
    let secs = 10f64.powf(log10_secs.clamp(0.0, 12.0));
    Duration::from_secs_f64(secs).min(cap)
}

/// Perfect predictions from trace ground truth.
#[derive(Debug, Clone, Copy, Default)]
pub struct OraclePredictor;

impl OraclePredictor {
    /// Create an oracle predictor.
    pub fn new() -> OraclePredictor {
        OraclePredictor
    }
}

impl LifetimePredictor for OraclePredictor {
    fn predict_remaining(&self, vm: &Vm, now: SimTime) -> Duration {
        vm.actual_remaining(now.max(vm.created_at()))
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// A predictor that always returns the same remaining lifetime.
#[derive(Debug, Clone, Copy)]
pub struct ConstantPredictor {
    value: Duration,
}

impl ConstantPredictor {
    /// Create a predictor that always answers `value`.
    pub fn new(value: Duration) -> ConstantPredictor {
        ConstantPredictor { value }
    }
}

impl LifetimePredictor for ConstantPredictor {
    fn predict_remaining(&self, _vm: &Vm, _now: SimTime) -> Duration {
        self.value
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

/// The accuracy dial of Appendix G.1.
///
/// Each VM is deterministically assigned (by hashing its id with the seed)
/// to the "correctly predicted" bucket with probability `accuracy`, or the
/// "mispredicted" bucket otherwise. The predicted *total* lifetime is the
/// true lifetime perturbed by Gaussian noise in the log10 domain with
/// σ = 0.001 (correct) or σ = 3 (incorrect), capped to `[0, 14 days]` as in
/// the paper. Repredictions subtract the observed uptime from that fixed
/// noisy total, so a mispredicted VM stays mispredicted — correction must
/// come from the scheduling algorithm.
///
/// Beyond symmetric noise, [`NoisyOraclePredictor::with_bias`] adds a
/// *systematic* bias applied to every VM: the predicted total lifetime is
/// additionally multiplied by `1 + bias_pct / 100` (in the log10 domain,
/// before capping). A negative bias consistently under-predicts, a
/// positive one over-predicts — the adversarial input for the
/// misprediction-correction experiments.
#[derive(Debug, Clone)]
pub struct NoisyOraclePredictor {
    accuracy: f64,
    sigma_correct: f64,
    sigma_incorrect: f64,
    /// Systematic log10-domain shift applied to every prediction.
    bias_log10: f64,
    cap: Duration,
    seed: u64,
}

impl NoisyOraclePredictor {
    /// Create the predictor with the paper's noise parameters and no
    /// systematic bias.
    pub fn new(accuracy: f64, seed: u64) -> NoisyOraclePredictor {
        NoisyOraclePredictor::with_bias(accuracy, 0, seed)
    }

    /// Create the predictor with a systematic bias: every predicted total
    /// lifetime is scaled by `1 + bias_pct / 100` (floored at 1 % of the
    /// true value so extreme negative biases stay finite).
    pub fn with_bias(accuracy: f64, bias_pct: i16, seed: u64) -> NoisyOraclePredictor {
        let factor = (1.0 + bias_pct as f64 / 100.0).max(0.01);
        NoisyOraclePredictor {
            accuracy: accuracy.clamp(0.0, 1.0),
            sigma_correct: 0.001,
            sigma_incorrect: 3.0,
            bias_log10: factor.log10(),
            cap: Duration::from_days(14),
            seed,
        }
    }

    /// The accuracy setting.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// The systematic bias as a log10-domain shift (0 when unbiased).
    pub fn bias_log10(&self) -> f64 {
        self.bias_log10
    }

    /// Deterministic uniform sample in `[0, 1)` derived from the VM id and a
    /// stream index.
    fn uniform(&self, vm: &Vm, stream: u64) -> f64 {
        let mut hasher = DefaultHasher::new();
        (self.seed, vm.id().0, stream).hash(&mut hasher);
        (hasher.finish() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The noisy predicted total lifetime for a VM (deterministic per VM).
    pub fn noisy_total_lifetime(&self, vm: &Vm) -> Duration {
        let correct = self.uniform(vm, 0) < self.accuracy;
        let sigma = if correct {
            self.sigma_correct
        } else {
            self.sigma_incorrect
        };
        // Box-Muller from two deterministic uniforms.
        let u1 = self.uniform(vm, 1).max(1e-12);
        let u2 = self.uniform(vm, 2);
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let log_lifetime = vm.actual_lifetime().log10_secs() + sigma * gauss + self.bias_log10;
        duration_from_log10(log_lifetime, self.cap)
    }
}

impl LifetimePredictor for NoisyOraclePredictor {
    fn predict_remaining(&self, vm: &Vm, now: SimTime) -> Duration {
        let total = self.noisy_total_lifetime(vm);
        let uptime = vm.uptime(now);
        // Once the VM outlives its noisy prediction the best this model can
        // say is "about to exit"; the scheduling algorithms are responsible
        // for correcting such mispredictions.
        total.saturating_sub(uptime).max(Duration::from_mins(1))
    }

    fn name(&self) -> &'static str {
        "noisy-oracle"
    }
}

/// Per-category empirical lifetime distributions with conditional
/// expectation (the distribution-based view of §3 / Fig. 2).
#[derive(Debug, Clone, Default)]
pub struct DistributionPredictor {
    per_category: BTreeMap<u32, EmpiricalDistribution>,
    overall: EmpiricalDistribution,
    cap: Duration,
}

impl DistributionPredictor {
    /// Fit from completed `(spec, lifetime)` observations, stratifying by
    /// the VM category feature.
    pub fn fit<'a, I>(observations: I) -> DistributionPredictor
    where
        I: IntoIterator<Item = (&'a VmSpec, Duration)>,
    {
        let mut per_category: BTreeMap<u32, Vec<Duration>> = BTreeMap::new();
        let mut all = Vec::new();
        for (spec, lifetime) in observations {
            per_category
                .entry(spec.category())
                .or_default()
                .push(lifetime);
            all.push(lifetime);
        }
        DistributionPredictor {
            per_category: per_category
                .into_iter()
                .map(|(k, v)| (k, EmpiricalDistribution::from_lifetimes(v)))
                .collect(),
            overall: EmpiricalDistribution::from_lifetimes(all),
            cap: LIFETIME_CAP,
        }
    }

    /// The distribution used for a given category.
    pub fn distribution(&self, category: u32) -> &EmpiricalDistribution {
        self.per_category.get(&category).unwrap_or(&self.overall)
    }

    /// Number of categories with a dedicated distribution.
    pub fn category_count(&self) -> usize {
        self.per_category.len()
    }
}

impl LifetimePredictor for DistributionPredictor {
    fn predict_remaining(&self, vm: &Vm, now: SimTime) -> Duration {
        let uptime = vm.uptime(now);
        let dist = self.distribution(vm.spec().category());
        let expected = dist.expected_remaining(uptime);
        if expected.is_zero() {
            // The VM outlived every observation of its category: fall back
            // to the overall distribution, then to a small constant.
            self.overall
                .expected_remaining(uptime)
                .max(Duration::from_mins(30))
                .min(self.cap)
        } else {
            expected.min(self.cap)
        }
    }

    fn name(&self) -> &'static str {
        "distribution"
    }
}

/// The production-style GBDT predictor: encodes features (including uptime)
/// and regresses log10 remaining lifetime.
#[derive(Debug, Clone)]
pub struct GbdtPredictor {
    model: GbdtRegressor,
    schema: FeatureSchema,
    cap: Duration,
}

impl GbdtPredictor {
    /// Train a predictor from a labelled dataset.
    pub fn train(config: GbdtConfig, dataset: &Dataset) -> GbdtPredictor {
        let rows = dataset.feature_rows();
        let labels = dataset.labels();
        let model = GbdtRegressor::fit(config, &rows, &labels);
        GbdtPredictor {
            model,
            schema: dataset.schema.clone(),
            cap: LIFETIME_CAP,
        }
    }

    /// Wrap an already-trained model and schema.
    pub fn from_parts(model: GbdtRegressor, schema: FeatureSchema) -> GbdtPredictor {
        GbdtPredictor {
            model,
            schema,
            cap: LIFETIME_CAP,
        }
    }

    /// The underlying regression model.
    pub fn model(&self) -> &GbdtRegressor {
        &self.model
    }

    /// The feature schema used at inference time.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// Predict remaining lifetime for a raw spec + uptime (bypassing the
    /// [`Vm`] record). Used by evaluation code. Encodes into a
    /// stack-resident [`FeatureRow`] — no heap allocation per prediction.
    pub fn predict_spec(&self, spec: &VmSpec, uptime: Duration) -> Duration {
        let mut row = FeatureRow::ZERO;
        self.schema.encode_into(spec, uptime, &mut row);
        duration_from_log10(self.model.predict(row.as_slice()), self.cap)
    }

    /// Compile the trained ensemble into the flat inference engine
    /// (§5 / Fig. 8). The compiled predictor produces bit-identical
    /// predictions and reports as `"gbdt-fast"`.
    pub fn compile(&self) -> CompiledGbdtPredictor {
        CompiledGbdtPredictor {
            model: CompiledGbdt::compile(&self.model),
            schema: self.schema.clone(),
            cap: self.cap,
        }
    }
}

impl LifetimePredictor for GbdtPredictor {
    fn predict_remaining(&self, vm: &Vm, now: SimTime) -> Duration {
        self.predict_spec(vm.spec(), vm.uptime(now))
    }

    fn name(&self) -> &'static str {
        "gbdt"
    }
}

/// Number of rows the compiled predictor's batch entry point encodes and
/// predicts per chunk. The chunk buffers live on the stack, so batched
/// host repredictions stay allocation-free at any host size.
pub const COMPILED_BATCH_CHUNK: usize = 64;

/// The compiled production predictor: a [`CompiledGbdt`] plus the feature
/// schema, serving the same predictions as [`GbdtPredictor`] bit-for-bit
/// at a fraction of the latency (Fig. 8). Build one with
/// [`GbdtPredictor::compile`].
#[derive(Debug, Clone)]
pub struct CompiledGbdtPredictor {
    model: CompiledGbdt,
    schema: FeatureSchema,
    cap: Duration,
}

impl CompiledGbdtPredictor {
    /// The compiled inference engine.
    pub fn model(&self) -> &CompiledGbdt {
        &self.model
    }

    /// The feature schema used at inference time.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// Predict remaining lifetime for a raw spec + uptime. Allocation-free:
    /// the feature row lives on the stack and the compiled traversal loop
    /// never touches the heap.
    pub fn predict_spec(&self, spec: &VmSpec, uptime: Duration) -> Duration {
        let mut row = FeatureRow::ZERO;
        self.schema.encode_into(spec, uptime, &mut row);
        duration_from_log10(self.model.predict(row.as_slice()), self.cap)
    }
}

impl LifetimePredictor for CompiledGbdtPredictor {
    fn predict_remaining(&self, vm: &Vm, now: SimTime) -> Duration {
        self.predict_spec(vm.spec(), vm.uptime(now))
    }

    fn name(&self) -> &'static str {
        "gbdt-fast"
    }

    /// Batched repredictions: encode up to [`COMPILED_BATCH_CHUNK`] VMs
    /// into stack-resident rows, run one [`CompiledGbdt::predict_batch`]
    /// per chunk, and emit results in iteration order. Zero heap
    /// allocations, bit-identical to the per-VM path.
    fn predict_remaining_batch<'a>(
        &self,
        vms: &mut dyn Iterator<Item = &'a Vm>,
        now: SimTime,
        sink: &mut dyn FnMut(&'a Vm, Duration),
    ) {
        let mut rows = [FeatureRow::ZERO; COMPILED_BATCH_CHUNK];
        let mut batch: [Option<&Vm>; COMPILED_BATCH_CHUNK] = [None; COMPILED_BATCH_CHUNK];
        let mut out = [0.0f64; COMPILED_BATCH_CHUNK];
        loop {
            let mut n = 0;
            while n < COMPILED_BATCH_CHUNK {
                let Some(vm) = vms.next() else { break };
                self.schema
                    .encode_into(vm.spec(), vm.uptime(now), &mut rows[n]);
                batch[n] = Some(vm);
                n += 1;
            }
            if n == 0 {
                return;
            }
            self.model.predict_batch(&rows[..n], &mut out[..n]);
            for i in 0..n {
                let vm = batch[i].take().expect("filled above");
                sink(vm, duration_from_log10(out[i], self.cap));
            }
            if n < COMPILED_BATCH_CHUNK {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use lava_core::resources::Resources;
    use lava_core::vm::VmId;

    fn vm(id: u64, lifetime_hours: u64, category: u32) -> Vm {
        let spec = VmSpec::builder(Resources::cores_gib(2, 8))
            .category(category)
            .build();
        Vm::new(
            VmId(id),
            spec,
            SimTime::ZERO,
            Duration::from_hours(lifetime_hours),
        )
    }

    #[test]
    fn oracle_is_exact() {
        let v = vm(1, 10, 0);
        let oracle = OraclePredictor::new();
        assert_eq!(oracle.predict_at_creation(&v), Duration::from_hours(10));
        assert_eq!(
            oracle.predict_remaining(&v, SimTime::ZERO + Duration::from_hours(4)),
            Duration::from_hours(6)
        );
        assert_eq!(oracle.name(), "oracle");
    }

    #[test]
    fn constant_predictor() {
        let v = vm(1, 10, 0);
        let p = ConstantPredictor::new(Duration::from_hours(2));
        assert_eq!(
            p.predict_remaining(&v, SimTime(500)),
            Duration::from_hours(2)
        );
    }

    #[test]
    fn noisy_oracle_is_deterministic_and_respects_accuracy_extremes() {
        let p_perfect = NoisyOraclePredictor::new(1.0, 7);
        let p_bad = NoisyOraclePredictor::new(0.0, 7);
        assert_eq!(p_perfect.accuracy(), 1.0);
        let v = vm(42, 24, 0);
        let a = p_perfect.noisy_total_lifetime(&v);
        let b = p_perfect.noisy_total_lifetime(&v);
        assert_eq!(a, b, "noisy prediction must be deterministic per VM");
        // With accuracy 1.0 the log error is tiny.
        let err = (a.log10_secs() - v.actual_lifetime().log10_secs()).abs();
        assert!(err < 0.05, "error too large for accuracy=1: {err}");
        // With accuracy 0.0 errors are typically large across a population.
        let mut large_errors = 0;
        for id in 0..200 {
            let v = vm(id, 24, 0);
            let pred = p_bad.noisy_total_lifetime(&v);
            if (pred.log10_secs() - v.actual_lifetime().log10_secs()).abs() > 1.0 {
                large_errors += 1;
            }
        }
        assert!(large_errors > 100, "only {large_errors} large errors");
    }

    #[test]
    fn noisy_oracle_remaining_never_zero() {
        let p = NoisyOraclePredictor::new(0.0, 3);
        let v = vm(5, 1000, 0);
        let r = p.predict_remaining(&v, SimTime::ZERO + Duration::from_hours(999));
        assert!(r >= Duration::from_mins(1));
    }

    #[test]
    fn distribution_predictor_conditions_on_uptime() {
        // Category 1: bimodal 1h / 168h lifetimes.
        let spec1 = VmSpec::builder(Resources::cores_gib(2, 8))
            .category(1)
            .build();
        let mut observations = Vec::new();
        for _ in 0..90 {
            observations.push((&spec1, Duration::from_hours(1)));
        }
        for _ in 0..10 {
            observations.push((&spec1, Duration::from_hours(168)));
        }
        let p = DistributionPredictor::fit(observations.iter().map(|(s, d)| (*s, *d)));
        assert_eq!(p.category_count(), 1);

        let v = Vm::new(
            VmId(1),
            spec1.clone(),
            SimTime::ZERO,
            Duration::from_hours(168),
        );
        let at_start = p.predict_at_creation(&v);
        let after_2h = p.predict_remaining(&v, SimTime::ZERO + Duration::from_hours(2));
        assert!(after_2h > at_start, "{after_2h:?} vs {at_start:?}");
        // Predictions are capped at 7 days.
        assert!(after_2h <= LIFETIME_CAP);
    }

    #[test]
    fn distribution_predictor_falls_back_when_outlived() {
        let spec1 = VmSpec::builder(Resources::cores_gib(2, 8))
            .category(1)
            .build();
        let obs = [(&spec1, Duration::from_hours(1))];
        let p = DistributionPredictor::fit(obs.iter().map(|(s, d)| (*s, *d)));
        let v = Vm::new(
            VmId(1),
            spec1.clone(),
            SimTime::ZERO,
            Duration::from_hours(50),
        );
        let r = p.predict_remaining(&v, SimTime::ZERO + Duration::from_hours(10));
        assert!(r >= Duration::from_mins(30));
    }

    #[test]
    fn gbdt_predictor_learns_category_split() {
        // Category 0 → 1h lifetimes, category 9 → 100h lifetimes.
        let mut builder = DatasetBuilder::new();
        for i in 0..400u64 {
            let (category, lifetime) = if i % 2 == 0 {
                (0, Duration::from_hours(1))
            } else {
                (9, Duration::from_hours(100))
            };
            let spec = VmSpec::builder(Resources::cores_gib(2, 8))
                .category(category)
                .build();
            builder.push(spec, lifetime);
        }
        let dataset = builder.build();
        let predictor = GbdtPredictor::train(GbdtConfig::fast(), &dataset);
        assert!(predictor.model().tree_count() > 0);

        let short_spec = VmSpec::builder(Resources::cores_gib(2, 8))
            .category(0)
            .build();
        let long_spec = VmSpec::builder(Resources::cores_gib(2, 8))
            .category(9)
            .build();
        let short = predictor.predict_spec(&short_spec, Duration::ZERO);
        let long = predictor.predict_spec(&long_spec, Duration::ZERO);
        assert!(
            long > short.scale_check(),
            "long {long:?} should exceed short {short:?}"
        );
        assert!(long >= Duration::from_hours(30));
        assert!(short <= Duration::from_hours(10));
    }

    // Small helper so the assertion above reads naturally.
    trait ScaleCheck {
        fn scale_check(self) -> Duration;
    }
    impl ScaleCheck for Duration {
        fn scale_check(self) -> Duration {
            self
        }
    }

    #[test]
    fn duration_from_log10_caps_and_handles_nan() {
        let cap = Duration::from_days(7);
        assert_eq!(duration_from_log10(f64::NAN, cap), cap);
        assert_eq!(duration_from_log10(20.0, cap), cap);
        assert_eq!(duration_from_log10(3.0, cap), Duration(1000));
    }

    #[test]
    fn arc_predictor_is_usable_as_trait_object() {
        let p: Arc<dyn LifetimePredictor> = Arc::new(OraclePredictor::new());
        let v = vm(1, 5, 0);
        assert_eq!(p.predict_at_creation(&v), Duration::from_hours(5));
        assert_eq!(p.name(), "oracle");
    }
}
