//! Feature schema and encoding (Appendix A of the paper).
//!
//! The model features are: zone, VM shape (CPU / memory / SSD), VM category,
//! metadata id, SSD attachment, provisioning model, priority, admission
//! policy and the uptime of the VM so far (in the log10 domain). High
//! cardinality categoricals are collapsed: any category value with fewer
//! than [`FeatureSchema::MIN_CATEGORY_EXAMPLES`] training examples is mapped
//! to a catch-all "Other" code.

use lava_core::time::Duration;
use lava_core::vm::{ProvisioningModel, VmPriority, VmSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of numeric features produced by [`FeatureSchema::encode`].
pub const FEATURE_COUNT: usize = 11;

/// Human-readable names of the encoded features, index-aligned with
/// [`FeatureSchema::encode`]. Used for feature-importance reporting
/// (Fig. 11).
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "zone",
    "vm_category",
    "metadata_id",
    "cpu_log",
    "memory_log",
    "ssd_log",
    "has_ssd",
    "provisioning_model",
    "priority",
    "admission_policy",
    "uptime_log",
];

/// The categorical code reserved for collapsed ("Other") categories.
pub const OTHER_CATEGORY: u32 = u32::MAX;

/// A fixed-capacity, inline feature row.
///
/// This is the encoding-side analogue of the scheduler's `ScoreVector`: the
/// prediction hot path encodes one of these per (VM, uptime) pair, and the
/// whole row lives on the stack — no heap allocation per prediction. The
/// row always has exactly [`FEATURE_COUNT`] entries, which is what lets the
/// compiled inference engine validate row length once per row instead of
/// per tree node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureRow {
    values: [f64; FEATURE_COUNT],
}

impl FeatureRow {
    /// The all-zero row (every feature at its "missing" value).
    pub const ZERO: FeatureRow = FeatureRow {
        values: [0.0; FEATURE_COUNT],
    };

    /// The row as a slice (always [`FEATURE_COUNT`] long).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the row's values.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }
}

impl Default for FeatureRow {
    fn default() -> FeatureRow {
        FeatureRow::ZERO
    }
}

impl AsRef<[f64]> for FeatureRow {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

impl std::ops::Index<usize> for FeatureRow {
    type Output = f64;
    fn index(&self, index: usize) -> &f64 {
        &self.values[index]
    }
}

/// Feature schema: the vocabulary of categorical values observed during
/// training, used to collapse rare categories consistently at inference
/// time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeatureSchema {
    zone_counts: HashMap<u32, u32>,
    category_counts: HashMap<u32, u32>,
    metadata_counts: HashMap<u32, u32>,
}

impl FeatureSchema {
    /// Categories with fewer training examples than this are collapsed to
    /// "Other" (Appendix A uses 10).
    pub const MIN_CATEGORY_EXAMPLES: u32 = 10;

    /// Create an empty schema (all categories collapse to "Other").
    pub fn new() -> FeatureSchema {
        FeatureSchema::default()
    }

    /// Build a schema by counting categorical values over the training
    /// specs.
    pub fn fit<'a, I>(specs: I) -> FeatureSchema
    where
        I: IntoIterator<Item = &'a VmSpec>,
    {
        let mut schema = FeatureSchema::new();
        for spec in specs {
            *schema.zone_counts.entry(spec.zone()).or_insert(0) += 1;
            *schema.category_counts.entry(spec.category()).or_insert(0) += 1;
            *schema
                .metadata_counts
                .entry(spec.metadata_id())
                .or_insert(0) += 1;
        }
        schema
    }

    fn collapse(counts: &HashMap<u32, u32>, value: u32) -> u32 {
        match counts.get(&value) {
            Some(&n) if n >= Self::MIN_CATEGORY_EXAMPLES => value,
            _ => OTHER_CATEGORY,
        }
    }

    /// Collapsed zone code for a spec.
    pub fn zone_code(&self, spec: &VmSpec) -> u32 {
        Self::collapse(&self.zone_counts, spec.zone())
    }

    /// Collapsed category code for a spec.
    pub fn category_code(&self, spec: &VmSpec) -> u32 {
        Self::collapse(&self.category_counts, spec.category())
    }

    /// Collapsed metadata-id code for a spec.
    pub fn metadata_code(&self, spec: &VmSpec) -> u32 {
        Self::collapse(&self.metadata_counts, spec.metadata_id())
    }

    /// Number of distinct (non-collapsed) category values seen in training.
    pub fn distinct_categories(&self) -> usize {
        self.category_counts
            .values()
            .filter(|&&n| n >= Self::MIN_CATEGORY_EXAMPLES)
            .count()
    }

    /// Encode a VM spec plus uptime into a fixed-length numeric feature
    /// vector (see [`FEATURE_NAMES`] for the layout).
    ///
    /// Allocates a fresh `Vec`; the prediction hot path uses
    /// [`FeatureSchema::encode_into`] with a stack-resident [`FeatureRow`]
    /// instead. Both produce identical values.
    pub fn encode(&self, spec: &VmSpec, uptime: Duration) -> Vec<f64> {
        let mut row = FeatureRow::ZERO;
        self.encode_into(spec, uptime, &mut row);
        row.as_slice().to_vec()
    }

    /// Encode a VM spec plus uptime into a caller-provided inline row.
    ///
    /// Lifetime-like quantities (shape dimensions, uptime) are encoded in
    /// the log10 domain as in the paper. Performs no heap allocation.
    pub fn encode_into(&self, spec: &VmSpec, uptime: Duration, row: &mut FeatureRow) {
        let r = spec.resources();
        row.values = [
            self.zone_code(spec) as f64,
            self.category_code(spec) as f64,
            self.metadata_code(spec) as f64,
            (r.cpu_milli.max(1) as f64).log10(),
            (r.memory_mib.max(1) as f64).log10(),
            (r.ssd_gib.max(1) as f64).log10(),
            if spec.has_ssd() { 1.0 } else { 0.0 },
            match spec.provisioning() {
                ProvisioningModel::OnDemand => 0.0,
                ProvisioningModel::Spot => 1.0,
            },
            match spec.priority() {
                VmPriority::Preemptible => 0.0,
                VmPriority::Production => 1.0,
                VmPriority::System => 2.0,
            },
            if spec.admission_bypass() { 1.0 } else { 0.0 },
            uptime.log10_secs(),
        ];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::resources::Resources;

    fn spec(category: u32) -> VmSpec {
        VmSpec::builder(Resources::cores_gib(4, 16))
            .zone(1)
            .category(category)
            .metadata_id(5)
            .build()
    }

    #[test]
    fn encode_has_fixed_length() {
        let schema = FeatureSchema::new();
        let v = schema.encode(&spec(0), Duration::from_hours(1));
        assert_eq!(v.len(), FEATURE_COUNT);
        assert_eq!(FEATURE_NAMES.len(), FEATURE_COUNT);
    }

    #[test]
    fn rare_categories_collapse_to_other() {
        // Category 1 appears 12 times (kept), category 2 appears 3 times
        // (collapsed).
        let mut specs = Vec::new();
        for _ in 0..12 {
            specs.push(spec(1));
        }
        for _ in 0..3 {
            specs.push(spec(2));
        }
        let schema = FeatureSchema::fit(specs.iter());
        assert_eq!(schema.category_code(&spec(1)), 1);
        assert_eq!(schema.category_code(&spec(2)), OTHER_CATEGORY);
        assert_eq!(schema.category_code(&spec(99)), OTHER_CATEGORY);
        assert_eq!(schema.distinct_categories(), 1);
    }

    #[test]
    fn uptime_is_logged() {
        let schema = FeatureSchema::new();
        let v0 = schema.encode(&spec(0), Duration::ZERO);
        let v1 = schema.encode(&spec(0), Duration::from_secs(1000));
        assert_eq!(v0[FEATURE_COUNT - 1], 0.0);
        assert!((v1[FEATURE_COUNT - 1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn encode_into_matches_encode() {
        let mut specs = Vec::new();
        for _ in 0..12 {
            specs.push(spec(1));
        }
        let schema = FeatureSchema::fit(specs.iter());
        for (s, uptime) in [
            (spec(1), Duration::ZERO),
            (spec(2), Duration::from_hours(7)),
            (spec(99), Duration::from_secs(123_456)),
        ] {
            let vec = schema.encode(&s, uptime);
            let mut row = FeatureRow::ZERO;
            schema.encode_into(&s, uptime, &mut row);
            assert_eq!(vec.as_slice(), row.as_slice());
        }
    }

    #[test]
    fn boolean_features_encoded() {
        let schema = FeatureSchema::new();
        let s = VmSpec::builder(Resources::new(1000, 1024, 375))
            .admission_bypass(true)
            .provisioning(ProvisioningModel::Spot)
            .priority(VmPriority::System)
            .build();
        let v = schema.encode(&s, Duration::ZERO);
        assert_eq!(v[6], 1.0); // has_ssd
        assert_eq!(v[7], 1.0); // spot
        assert_eq!(v[8], 2.0); // system priority
        assert_eq!(v[9], 1.0); // admission bypass
    }
}
