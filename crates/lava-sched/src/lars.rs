//! LARS: Lifetime-Aware ReScheduling for defragmentation and maintenance
//! (§4.4, Appendix H).
//!
//! When a host is drained (for defragmentation or a maintenance event), its
//! VMs are live-migrated one at a time, with a limited number of concurrent
//! migrations across the pool. LARS orders the migrations by **descending
//! predicted remaining lifetime**: the longest-lived VMs move first, so that
//! short-lived VMs get a chance to exit naturally while the long ones are in
//! flight — every such exit saves one migration.

use crate::cluster::Cluster;
use lava_core::host::HostId;
use lava_core::time::SimTime;
use lava_core::vm::VmId;
use lava_model::predictor::LifetimePredictor;

/// Order the VMs on `host` for evacuation: longest predicted remaining
/// lifetime first (LARS, Algorithm 1). Ties are broken by VM id for
/// determinism.
pub fn lars_migration_order(
    cluster: &Cluster,
    host: HostId,
    predictor: &dyn LifetimePredictor,
    now: SimTime,
) -> Vec<VmId> {
    let Some(host) = cluster.host(host) else {
        return Vec::new();
    };
    let mut vms: Vec<(VmId, u64)> = host
        .vm_ids()
        .map(|id| {
            let remaining = cluster
                .vm(id)
                .map(|vm| predictor.predict_remaining(vm, now).as_secs())
                .unwrap_or(0);
            (id, remaining)
        })
        .collect();
    vms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    vms.into_iter().map(|(id, _)| id).collect()
}

/// The baseline evacuation order used in production before LARS: the order
/// in which the VMs appear in the trace/host record (ascending VM id, which
/// corresponds to creation order in our traces).
pub fn baseline_migration_order(cluster: &Cluster, host: HostId) -> Vec<VmId> {
    cluster
        .host(host)
        .map(|h| h.vm_ids().collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::host::HostSpec;
    use lava_core::resources::Resources;
    use lava_core::time::Duration;
    use lava_core::vm::{Vm, VmSpec};
    use lava_model::predictor::OraclePredictor;

    fn cluster_with_vms(lifetimes_hours: &[u64]) -> Cluster {
        let mut c = Cluster::with_uniform_hosts(1, HostSpec::new(Resources::cores_gib(64, 256)));
        for (i, &hours) in lifetimes_hours.iter().enumerate() {
            let vm = Vm::new(
                VmId(i as u64),
                VmSpec::builder(Resources::cores_gib(2, 8)).build(),
                SimTime::ZERO,
                Duration::from_hours(hours),
            );
            c.place(vm, HostId(0)).unwrap();
        }
        c
    }

    #[test]
    fn lars_orders_longest_first() {
        let c = cluster_with_vms(&[2, 50, 10, 1]);
        let order = lars_migration_order(&c, HostId(0), &OraclePredictor::new(), SimTime::ZERO);
        assert_eq!(order, vec![VmId(1), VmId(2), VmId(0), VmId(3)]);
    }

    #[test]
    fn baseline_order_is_creation_order() {
        let c = cluster_with_vms(&[2, 50, 10, 1]);
        let order = baseline_migration_order(&c, HostId(0));
        assert_eq!(order, vec![VmId(0), VmId(1), VmId(2), VmId(3)]);
    }

    #[test]
    fn ties_broken_by_vm_id() {
        let c = cluster_with_vms(&[5, 5, 5]);
        let order = lars_migration_order(&c, HostId(0), &OraclePredictor::new(), SimTime::ZERO);
        assert_eq!(order, vec![VmId(0), VmId(1), VmId(2)]);
    }

    #[test]
    fn unknown_host_yields_empty_order() {
        let c = cluster_with_vms(&[1]);
        assert!(
            lars_migration_order(&c, HostId(9), &OraclePredictor::new(), SimTime::ZERO).is_empty()
        );
        assert!(baseline_migration_order(&c, HostId(9)).is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        proptest! {
            /// Randomized coverage of the two evacuation orderings: both
            /// enumerate exactly the host's VM set; LARS is the VM set
            /// sorted by descending repredicted remaining lifetime with a
            /// stable VM-id tiebreak; the baseline is creation (id) order.
            #[test]
            fn lars_and_baseline_orders_agree_with_their_specifications(
                // The test host holds 64 cores; 2-core VMs cap at 32.
                lifetimes in proptest::collection::vec(1u64..60, 1..30),
                now_hours in 0u64..30,
            ) {
                let c = cluster_with_vms(&lifetimes);
                let now = SimTime::ZERO + Duration::from_hours(now_hours);
                let oracle = OraclePredictor::new();
                let lars = lars_migration_order(&c, HostId(0), &oracle, now);
                let baseline = baseline_migration_order(&c, HostId(0));

                // Identical VM sets (and no duplicates in either order).
                let lars_set: BTreeSet<VmId> = lars.iter().copied().collect();
                let baseline_set: BTreeSet<VmId> = baseline.iter().copied().collect();
                prop_assert_eq!(lars.len(), lifetimes.len());
                prop_assert_eq!(lars_set.len(), lars.len(), "duplicate VM in LARS order");
                prop_assert_eq!(&lars_set, &baseline_set, "orders cover different VM sets");

                // Baseline is ascending-id (creation) order.
                let expected_baseline: Vec<VmId> =
                    (0..lifetimes.len() as u64).map(VmId).collect();
                prop_assert_eq!(&baseline, &expected_baseline);

                // LARS is descending repredicted remaining lifetime with a
                // stable ascending-VmId tiebreak — recomputed here
                // independently of the implementation's sort.
                let mut expected: Vec<(VmId, u64)> = baseline
                    .iter()
                    .map(|&id| {
                        let vm = c.vm(id).expect("live VM");
                        (id, oracle.predict_remaining(vm, now).as_secs())
                    })
                    .collect();
                expected.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let expected_order: Vec<VmId> = expected.iter().map(|&(id, _)| id).collect();
                prop_assert_eq!(&lars, &expected_order);

                // The ordering is monotone: remaining lifetimes never
                // increase along the LARS order, and equal lifetimes keep
                // ascending ids.
                let remaining: Vec<u64> = lars
                    .iter()
                    .map(|&id| oracle.predict_remaining(c.vm(id).unwrap(), now).as_secs())
                    .collect();
                for (i, pair) in remaining.windows(2).enumerate() {
                    prop_assert!(pair[0] >= pair[1], "lifetime increased at {}", i);
                    if pair[0] == pair[1] {
                        prop_assert!(lars[i] < lars[i + 1], "unstable tiebreak at {}", i);
                    }
                }
            }
        }
    }
}
