//! Scheduling algorithms for lifetime-aware VM allocation.
//!
//! This crate contains the mini-Borg scheduling substrate and the
//! algorithms compared in the LAVA paper:
//!
//! * [`baseline`] — lifetime-agnostic Best Fit and Waste-Minimisation (the
//!   production baseline),
//! * [`la_binary`] — LA-Binary, the prior state of the art (Barbalho et al.
//!   2023) with one-shot predictions,
//! * [`nilas`] — NILAS, reprediction-based temporal-cost scoring with the
//!   host score cache,
//! * [`lava`] — LAVA, the host lifetime-class state machine with
//!   misprediction correction,
//! * [`lars`] — LARS, lifetime-aware migration ordering for
//!   defragmentation and maintenance,
//! * [`cluster`], [`scheduler`], [`policy`], [`scoring`] — the shared
//!   substrate (cluster state, driver loop, policy trait, lexicographic
//!   scoring). A fleet deployment runs one [`scheduler::Scheduler`]
//!   instance per cell; [`scheduler::Scheduler::cell_summary`] extracts
//!   the bounded-staleness cell summary the fleet routing tier consumes.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use lava_core::prelude::*;
//! use lava_model::predictor::OraclePredictor;
//! use lava_sched::cluster::Cluster;
//! use lava_sched::nilas::NilasPolicy;
//! use lava_sched::scheduler::Scheduler;
//!
//! let cluster = Cluster::with_uniform_hosts(8, HostSpec::new(Resources::cores_gib(32, 128)));
//! let predictor = Arc::new(OraclePredictor::new());
//! let mut scheduler = Scheduler::new(
//!     cluster,
//!     Box::new(NilasPolicy::with_defaults(predictor.clone())),
//!     predictor,
//! );
//! let vm = Vm::new(
//!     VmId(1),
//!     VmSpec::builder(Resources::cores_gib(4, 16)).build(),
//!     SimTime::ZERO,
//!     Duration::from_hours(3),
//! );
//! let host = scheduler.schedule(vm, SimTime::ZERO)?;
//! assert!(scheduler.cluster().host(host).unwrap().contains(VmId(1)));
//! # Ok::<(), lava_sched::policy::ScheduleError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod cluster;
pub mod la_binary;
pub mod lars;
pub mod lava;
pub mod nilas;
pub mod policy;
pub mod scheduler;
pub mod scoring;

use lava_model::predictor::LifetimePredictor;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The scheduling algorithms compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Lifetime-agnostic Best Fit.
    BestFit,
    /// The production baseline: Waste Minimisation.
    Baseline,
    /// LA-Binary (Barbalho et al. 2023), one-shot predictions.
    LaBinary,
    /// NILAS (§4.2), reprediction-based temporal cost.
    Nilas,
    /// LAVA (§4.3), lifetime-class state machine.
    Lava,
}

impl Algorithm {
    /// All algorithms, baseline first.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::BestFit,
        Algorithm::Baseline,
        Algorithm::LaBinary,
        Algorithm::Nilas,
        Algorithm::Lava,
    ];

    /// Instantiate the placement policy for this algorithm with default
    /// configuration, sharing the given predictor.
    pub fn build_policy(
        self,
        predictor: Arc<dyn LifetimePredictor>,
    ) -> Box<dyn policy::PlacementPolicy> {
        match self {
            Algorithm::BestFit => Box::new(baseline::BestFitPolicy::new()),
            Algorithm::Baseline => Box::new(baseline::WasteMinimizationPolicy::new()),
            Algorithm::LaBinary => Box::new(la_binary::LaBinaryPolicy::new(
                predictor,
                la_binary::LaBinaryConfig::default(),
            )),
            Algorithm::Nilas => Box::new(nilas::NilasPolicy::with_defaults(predictor)),
            Algorithm::Lava => Box::new(lava::LavaPolicy::with_defaults(predictor)),
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::BestFit => write!(f, "best-fit"),
            Algorithm::Baseline => write!(f, "baseline"),
            Algorithm::LaBinary => write!(f, "la-binary"),
            Algorithm::Nilas => write!(f, "nilas"),
            Algorithm::Lava => write!(f, "lava"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_model::predictor::OraclePredictor;

    #[test]
    fn factory_builds_every_algorithm() {
        let predictor: Arc<dyn LifetimePredictor> = Arc::new(OraclePredictor::new());
        let expected = ["best-fit", "waste-min", "la-binary", "nilas", "lava"];
        for (algo, expected_name) in Algorithm::ALL.into_iter().zip(expected) {
            let policy = algo.build_policy(predictor.clone());
            assert_eq!(policy.name(), expected_name);
            assert!(!algo.to_string().is_empty());
        }
    }
}
