//! NILAS: Non-Invasive Lifetime-Aware Scheduling (§4.2).
//!
//! For every candidate host, NILAS repredicts the remaining lifetime of all
//! VMs currently on it, takes the maximum as the host's expected exit time,
//! and computes the temporal cost
//! `ΔT = max(vm_predicted_exit − host_exit, 0)` quantised into the bucket
//! boundaries of [`TemporalCostBuckets`]. The temporal cost sits one level
//! above the bin-packing score in the lexicographic scoring function, so it
//! only decides among hosts that are otherwise equivalent — hence
//! *non-invasive*.
//!
//! Because repredicting every VM on every host can become a bottleneck in
//! very large pools, host exit times come from the cluster-level cache of
//! Appendix G.3 (see [`crate::cluster`]): entries are invalidated by
//! placement/removal/migration events, raised incrementally on placement,
//! and refreshed when their interval or their own exit time passes.
//!
//! The default (indexed) candidate scan exploits that the temporal cost is
//! monotone in the host exit time: hosts are visited from latest-exiting to
//! earliest via the cache's exit-time order and the scan stops as soon as
//! the cost bucket can no longer match the best candidate, instead of
//! scoring all hosts. Empty hosts (exit time = now) are enumerated through
//! the pool's occupancy index. A linear reference scan is retained for
//! parity tests and benchmarks ([`CandidateScan::Linear`]).

use crate::cluster::Cluster;
use crate::policy::{CacheCounters, CandidateScan, FallbackSpec, PlacementPolicy};
use crate::scoring::{waste_minimization_score, ScoreVector};
use lava_core::host::{Host, HostId};
use lava_core::lifetime::TemporalCostBuckets;
use lava_core::resources::Resources;
use lava_core::time::{Duration, SimTime};
use lava_core::vm::Vm;
use lava_model::predictor::LifetimePredictor;
use std::sync::Arc;

/// Configuration for [`NilasPolicy`].
#[derive(Debug, Clone)]
pub struct NilasConfig {
    /// Temporal-cost bucket boundaries (defaults to the paper's).
    pub buckets: TemporalCostBuckets,
    /// How long a cached host exit time stays valid when nothing changes on
    /// the host. `None` disables caching (every scoring pass repredicts).
    pub cache_refresh: Option<Duration>,
    /// If `false`, use only the initial (scheduling-time) predictions — the
    /// "no reprediction" ablation of Fig. 16, which behaves like LA's
    /// one-shot view with NILAS's scoring.
    pub repredict: bool,
    /// How candidates are enumerated. `Indexed` requires caching; with
    /// `cache_refresh: None` the policy falls back to the linear scan.
    pub scan: CandidateScan,
    /// When set, the policy listens to the scheduler's measured model
    /// health and — past the spec's misprediction threshold — zeroes its
    /// temporal cost term, degrading to pure waste-minimisation (the
    /// Theorem 1 best-fit regime, whose bound holds without lifetime
    /// knowledge). `None` (the default) trusts the model unconditionally.
    pub fallback: Option<FallbackSpec>,
}

impl Default for NilasConfig {
    fn default() -> Self {
        NilasConfig {
            buckets: TemporalCostBuckets::default(),
            cache_refresh: Some(Duration::from_mins(1)),
            repredict: true,
            scan: CandidateScan::Indexed,
            fallback: None,
        }
    }
}

/// Counters describing how much prediction work NILAS performed; used by
/// the model-latency and cache-ablation experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NilasStats {
    /// Number of individual VM repredictions issued.
    pub predictions: u64,
    /// Number of host scores answered from the cache.
    pub cache_hits: u64,
    /// Number of host scores recomputed.
    pub cache_misses: u64,
}

impl NilasStats {
    /// Fold cache-operation counters into the running totals.
    pub(crate) fn absorb(&mut self, counters: CacheCounters) {
        self.predictions += counters.predictions;
        self.cache_hits += counters.hits;
        self.cache_misses += counters.misses;
    }
}

/// A candidate under consideration: `(temporal cost, waste, id)`, compared
/// with the same semantics as the lexicographic [`ScoreVector`] (NaN is
/// worst, lowest id wins ties).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pub(crate) cost: usize,
    pub(crate) waste: f64,
    pub(crate) id: HostId,
}

impl Candidate {
    pub(crate) fn better_than(&self, other: &Candidate) -> bool {
        if self.cost != other.cost {
            return self.cost < other.cost;
        }
        let a = if self.waste.is_nan() {
            f64::INFINITY
        } else {
            self.waste
        };
        let b = if other.waste.is_nan() {
            f64::INFINITY
        } else {
            other.waste
        };
        if a != b {
            return a < b;
        }
        self.id < other.id
    }
}

/// Replace `best` if `candidate` wins.
pub(crate) fn consider(best: &mut Option<Candidate>, candidate: Candidate) {
    match best {
        Some(current) if !candidate.better_than(current) => {}
        _ => *best = Some(candidate),
    }
}

/// The NILAS placement policy.
pub struct NilasPolicy {
    predictor: Arc<dyn LifetimePredictor>,
    config: NilasConfig,
    stats: NilasStats,
    /// Whether the policy is currently degraded to best-fit because the
    /// measured misprediction error crossed the fallback threshold.
    degraded: bool,
}

impl NilasPolicy {
    /// Create the policy.
    pub fn new(predictor: Arc<dyn LifetimePredictor>, config: NilasConfig) -> NilasPolicy {
        NilasPolicy {
            predictor,
            config,
            stats: NilasStats::default(),
            degraded: false,
        }
    }

    /// Create the policy with default configuration.
    pub fn with_defaults(predictor: Arc<dyn LifetimePredictor>) -> NilasPolicy {
        NilasPolicy::new(predictor, NilasConfig::default())
    }

    /// Prediction/cache counters accumulated so far.
    pub fn stats(&self) -> NilasStats {
        self.stats
    }

    /// The configured temporal-cost buckets.
    pub fn buckets(&self) -> &TemporalCostBuckets {
        &self.config.buckets
    }

    /// The configured candidate scan mode.
    pub fn scan_mode(&self) -> CandidateScan {
        self.config.scan
    }

    /// Whether the policy is currently degraded to the best-fit regime.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Force the degraded state (used by LAVA, which owns the fallback
    /// decision for its embedded tie-breaker).
    pub(crate) fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// The quantised temporal cost between a VM exit and a host exit —
    /// zero while degraded, so the lexicographic score collapses to pure
    /// waste minimisation.
    fn quantised_cost(&self, vm_exit: SimTime, host_exit: SimTime) -> usize {
        if self.degraded {
            0
        } else {
            self.config
                .buckets
                .cost(vm_exit.saturating_since(host_exit))
        }
    }

    /// The (possibly cached) expected exit time of a host at `now`.
    pub fn host_exit_time(&mut self, cluster: &Cluster, host: &Host, now: SimTime) -> SimTime {
        let mut counters = CacheCounters::default();
        let exit = cluster.cached_exit_time(
            host,
            self.predictor.as_ref(),
            now,
            self.config.cache_refresh,
            self.config.repredict,
            &mut counters,
        );
        self.stats.absorb(counters);
        exit
    }

    /// The quantised temporal cost of placing a VM expected to exit at
    /// `vm_exit` onto `host`.
    pub fn temporal_cost(
        &mut self,
        cluster: &Cluster,
        host: &Host,
        vm_exit: SimTime,
        now: SimTime,
    ) -> usize {
        let host_exit = self.host_exit_time(cluster, host, now);
        self.quantised_cost(vm_exit, host_exit)
    }

    /// The predicted exit time of the VM being scheduled.
    fn vm_exit_time(&mut self, vm: &Vm, now: SimTime) -> SimTime {
        let remaining = if self.config.repredict || vm.initial_prediction().is_none() {
            self.stats.predictions += 1;
            self.predictor.predict_remaining(vm, now)
        } else {
            // One-shot view: remaining = initial prediction − uptime.
            vm.initial_prediction()
                .unwrap_or_default()
                .saturating_sub(vm.uptime(now))
        };
        now + remaining
    }

    /// The cached exit-time hint for a VM that was just placed: the exact
    /// value a full recompute would produce for this VM's contribution to
    /// its host's exit time.
    fn placement_hint(
        &mut self,
        cluster: &Cluster,
        vm: lava_core::vm::VmId,
        now: SimTime,
    ) -> Option<SimTime> {
        let record = cluster.vm(vm)?;
        if self.config.repredict {
            self.stats.predictions += 1;
            Some(now + self.predictor.predict_remaining(record, now))
        } else {
            Some(record.created_at() + record.initial_prediction()?)
        }
    }

    /// Credit cache hits observed by an embedding policy's indexed scan.
    pub(crate) fn add_cache_hits(&mut self, hits: u64) {
        self.stats.cache_hits += hits;
    }

    /// Bring the cluster exit cache up to date for a placement of
    /// `request` and absorb the counters.
    pub(crate) fn refresh_cache(&mut self, cluster: &Cluster, now: SimTime, request: Resources) {
        let mut counters = CacheCounters::default();
        cluster.refresh_exit_entries(
            self.predictor.as_ref(),
            now,
            self.config.cache_refresh,
            self.config.repredict,
            request,
            &mut counters,
        );
        self.stats.absorb(counters);
    }

    /// Reference implementation: score every feasible host (the seed's
    /// enumeration, kept for parity tests and benchmarks). Exit times come
    /// from the same shared cache as the indexed scan.
    pub fn choose_host_linear(
        &mut self,
        cluster: &Cluster,
        vm: &Vm,
        now: SimTime,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        let vm_exit = self.vm_exit_time(vm, now);
        let request = vm.resources();
        let mut best: Option<(ScoreVector, HostId)> = None;
        let mut counters = CacheCounters::default();
        for host in cluster.hosts() {
            if Some(host.id()) == exclude || !host.can_fit(request) {
                continue;
            }
            let host_exit = cluster.cached_exit_time(
                host,
                self.predictor.as_ref(),
                now,
                self.config.cache_refresh,
                self.config.repredict,
                &mut counters,
            );
            let cost = self.quantised_cost(vm_exit, host_exit);
            let score = ScoreVector::new([cost as f64, waste_minimization_score(host, request)]);
            match &best {
                Some((best_score, _)) if !score.is_better_than(best_score) => {}
                _ => best = Some((score, host.id())),
            }
        }
        self.stats.absorb(counters);
        best.map(|(_, id)| id)
    }

    /// Indexed scan: walk occupied hosts in descending cached-exit order,
    /// stopping at the first cost bucket that cannot beat the best
    /// candidate, then consider empty hosts through the occupancy index.
    fn choose_host_indexed(
        &mut self,
        cluster: &Cluster,
        vm: &Vm,
        now: SimTime,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        let vm_exit = self.vm_exit_time(vm, now);
        let request = vm.resources();
        self.refresh_cache(cluster, now, request);
        let mut hits = 0u64;
        let mut best: Option<Candidate> = None;
        {
            let cache = cluster.exit_cache_lock();
            for &(exit, id) in cache.by_exit.iter().rev() {
                let cost = self.quantised_cost(vm_exit, exit);
                if let Some(current) = &best {
                    if cost > current.cost {
                        // Exits are descending, so costs are non-decreasing:
                        // nothing further can win.
                        break;
                    }
                }
                if Some(id) == exclude {
                    continue;
                }
                let Some(host) = cluster.host(id) else {
                    continue;
                };
                if !host.can_fit(request) {
                    continue;
                }
                if cache.cached_before(id, now) {
                    hits += 1;
                }
                consider(
                    &mut best,
                    Candidate {
                        cost,
                        waste: waste_minimization_score(host, request),
                        id,
                    },
                );
            }
        }
        // Empty hosts all share exit == now.
        let empty_cost = self.quantised_cost(vm_exit, now);
        if best.as_ref().is_none_or(|b| empty_cost <= b.cost) {
            for host in cluster.pool().empty_hosts() {
                if Some(host.id()) == exclude || !host.can_fit(request) {
                    continue;
                }
                consider(
                    &mut best,
                    Candidate {
                        cost: empty_cost,
                        waste: waste_minimization_score(host, request),
                        id: host.id(),
                    },
                );
            }
        }
        self.stats.cache_hits += hits;
        best.map(|b| b.id)
    }
}

impl PlacementPolicy for NilasPolicy {
    fn name(&self) -> &'static str {
        "nilas"
    }

    fn choose_host(
        &mut self,
        cluster: &Cluster,
        vm: &Vm,
        now: SimTime,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        match self.config.scan {
            CandidateScan::Indexed if self.config.cache_refresh.is_some() => {
                self.choose_host_indexed(cluster, vm, now, exclude)
            }
            _ => self.choose_host_linear(cluster, vm, now, exclude),
        }
    }

    fn on_vm_placed(
        &mut self,
        cluster: &mut Cluster,
        vm: lava_core::vm::VmId,
        host: HostId,
        now: SimTime,
    ) {
        // Incremental max-exit maintenance: raise the cached exit with the
        // placed VM's predicted exit instead of repredicting the host.
        match self.placement_hint(cluster, vm, now) {
            Some(vm_exit) => cluster.apply_exit_hint(host, vm_exit, now, self.config.cache_refresh),
            None => cluster.invalidate_exit(host),
        }
    }

    fn on_vm_exited(&mut self, cluster: &mut Cluster, host: HostId, _now: SimTime) {
        cluster.invalidate_exit(host);
    }

    fn on_model_health(&mut self, error: f64, samples: usize) {
        if let Some(spec) = self.config.fallback {
            self.degraded = spec.should_degrade(error, samples, self.degraded);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::host::HostSpec;
    use lava_core::resources::Resources;
    use lava_core::vm::{VmId, VmSpec};
    use lava_model::predictor::OraclePredictor;

    fn cluster() -> Cluster {
        Cluster::with_uniform_hosts(4, HostSpec::new(Resources::cores_gib(32, 128)))
    }

    fn vm_at(id: u64, hours: u64, created: SimTime) -> Vm {
        Vm::new(
            VmId(id),
            VmSpec::builder(Resources::cores_gib(4, 16)).build(),
            created,
            Duration::from_hours(hours),
        )
    }

    fn vm(id: u64, hours: u64) -> Vm {
        vm_at(id, hours, SimTime::ZERO)
    }

    fn oracle_policy(config: NilasConfig) -> NilasPolicy {
        NilasPolicy::new(Arc::new(OraclePredictor::new()), config)
    }

    #[test]
    fn places_vm_on_host_it_does_not_outlive() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap(); // exits at 10h
        c.place(vm(2, 2), HostId(1)).unwrap(); // exits at 2h
        let mut p = oracle_policy(NilasConfig::default());
        // A 5h VM fits "inside" host 0 (ΔT = 0) but would extend host 1
        // (ΔT = 3h → cost 5); the paper's Figure 4 example.
        let chosen = p.choose_host(&c, &vm(10, 5), SimTime::ZERO, None).unwrap();
        assert_eq!(chosen, HostId(0));
        assert_eq!(p.name(), "nilas");
    }

    #[test]
    fn empty_host_is_least_preferred() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap();
        let mut p = oracle_policy(NilasConfig::default());
        let chosen = p.choose_host(&c, &vm(10, 1), SimTime::ZERO, None).unwrap();
        assert_eq!(chosen, HostId(0), "should fill the occupied host first");
    }

    #[test]
    fn repredictions_correct_mispredicted_hosts() {
        // Host 0 holds a VM that outlived its initial 1h prediction and will
        // actually run for 100h. With repredictions NILAS sees the host as
        // long-lived and happily places a 50h VM there; without, it thinks
        // the host is about to free up and pays a large temporal cost.
        let now = SimTime::ZERO + Duration::from_hours(5);
        let mut c = cluster();
        let mut long_vm = vm(1, 100);
        long_vm.set_initial_prediction(Duration::from_hours(1));
        c.place(long_vm, HostId(0)).unwrap();
        // Host 1 holds a genuinely short VM (exits at 6h).
        let mut short_vm = vm(2, 6);
        short_vm.set_initial_prediction(Duration::from_hours(6));
        c.place(short_vm, HostId(1)).unwrap();

        let incoming = vm_at(10, 50, now);

        let mut with_repred = oracle_policy(NilasConfig::default());
        assert_eq!(
            with_repred.choose_host(&c, &incoming, now, None),
            Some(HostId(0))
        );

        let mut without = oracle_policy(NilasConfig {
            repredict: false,
            ..NilasConfig::default()
        });
        // One-shot view: host 0 "exits at 1h" (already past) and host 1
        // "exits at 6h"; both look equally bad temporally (max ΔT bucket),
        // so bin packing decides — and both hosts look identical there too,
        // meaning the mispredicted host is no longer protected.
        let chosen = without.choose_host(&c, &incoming, now, None).unwrap();
        assert_eq!(
            chosen,
            HostId(0),
            "tie broken by host id under one-shot view"
        );
    }

    #[test]
    fn cache_avoids_recomputation_within_refresh() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap();
        let mut p = oracle_policy(NilasConfig {
            cache_refresh: Some(Duration::from_mins(15)),
            ..NilasConfig::default()
        });
        let host = c.host(HostId(0)).unwrap().clone();
        let t0 = SimTime::ZERO;
        let _ = p.host_exit_time(&c, &host, t0);
        let misses_before = p.stats().cache_misses;
        let _ = p.host_exit_time(&c, &host, t0 + Duration::from_mins(5));
        assert_eq!(p.stats().cache_misses, misses_before);
        assert!(p.stats().cache_hits >= 1);
        // After the refresh interval the score is recomputed.
        let _ = p.host_exit_time(&c, &host, t0 + Duration::from_mins(30));
        assert_eq!(p.stats().cache_misses, misses_before + 1);
    }

    #[test]
    fn cache_invalidated_on_placement_and_exit() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap();
        let mut p = oracle_policy(NilasConfig {
            cache_refresh: Some(Duration::from_hours(1)),
            ..NilasConfig::default()
        });
        let host = c.host(HostId(0)).unwrap().clone();
        let _ = p.host_exit_time(&c, &host, SimTime::ZERO);
        // VM 2 has no record in the cluster, so no hint can be derived and
        // the entry must be invalidated outright.
        p.on_vm_placed(&mut c, VmId(2), HostId(0), SimTime::ZERO);
        let misses_before = p.stats().cache_misses;
        let _ = p.host_exit_time(&c, &host, SimTime(1));
        assert_eq!(p.stats().cache_misses, misses_before + 1);

        let _ = p.host_exit_time(&c, &host, SimTime(2));
        p.on_vm_exited(&mut c, HostId(0), SimTime(2));
        let misses_before = p.stats().cache_misses;
        let _ = p.host_exit_time(&c, &host, SimTime(3));
        assert_eq!(p.stats().cache_misses, misses_before + 1);
    }

    #[test]
    fn placement_hint_keeps_cache_warm() {
        // When the placed VM has a live record, the placement hook heals
        // the cache entry instead of forcing a recompute.
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap();
        let mut p = oracle_policy(NilasConfig {
            cache_refresh: Some(Duration::from_hours(1)),
            ..NilasConfig::default()
        });
        let host = c.host(HostId(0)).unwrap().clone();
        let _ = p.host_exit_time(&c, &host, SimTime::ZERO);

        let mut v = vm(2, 20);
        v.set_initial_prediction(Duration::from_hours(20));
        c.place(v, HostId(0)).unwrap();
        p.on_vm_placed(&mut c, VmId(2), HostId(0), SimTime::ZERO);

        let misses_before = p.stats().cache_misses;
        let exit = p.host_exit_time(&c, &host, SimTime(1));
        assert_eq!(p.stats().cache_misses, misses_before, "served from cache");
        assert_eq!(exit, SimTime::ZERO + Duration::from_hours(20));
    }

    #[test]
    fn cache_expires_when_host_deadline_passes() {
        let mut c = cluster();
        c.place(vm(1, 1), HostId(0)).unwrap();
        let mut p = oracle_policy(NilasConfig {
            cache_refresh: Some(Duration::from_hours(100)),
            ..NilasConfig::default()
        });
        let host = c.host(HostId(0)).unwrap().clone();
        let exit = p.host_exit_time(&c, &host, SimTime::ZERO);
        assert_eq!(exit, SimTime::ZERO + Duration::from_hours(1));
        // Past the cached exit time the entry must be recomputed even though
        // the refresh interval has not elapsed.
        let misses_before = p.stats().cache_misses;
        let _ = p.host_exit_time(&c, &host, SimTime::ZERO + Duration::from_hours(2));
        assert_eq!(p.stats().cache_misses, misses_before + 1);
    }

    #[test]
    fn no_feasible_host_returns_none() {
        let c = cluster();
        let mut p = oracle_policy(NilasConfig::default());
        let huge = Vm::new(
            VmId(1),
            VmSpec::builder(Resources::cores_gib(64, 256)).build(),
            SimTime::ZERO,
            Duration::from_hours(1),
        );
        assert_eq!(p.choose_host(&c, &huge, SimTime::ZERO, None), None);
    }

    #[test]
    fn indexed_and_linear_scans_agree() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap();
        c.place(vm(2, 2), HostId(1)).unwrap();
        c.place(vm(3, 40), HostId(2)).unwrap();
        for (id, hours) in [(10u64, 5u64), (11, 1), (12, 100), (13, 30)] {
            let mut indexed = oracle_policy(NilasConfig::default());
            let mut linear = oracle_policy(NilasConfig {
                scan: CandidateScan::Linear,
                ..NilasConfig::default()
            });
            let request = vm(id, hours);
            assert_eq!(
                indexed.choose_host(&c, &request, SimTime::ZERO, None),
                linear.choose_host(&c, &request, SimTime::ZERO, None),
                "vm {id} ({hours}h)"
            );
        }
    }

    #[test]
    fn fallback_degrades_to_best_fit_and_recovers() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap(); // exits at 10h
        c.place(vm(2, 2), HostId(1)).unwrap(); // exits at 2h
        let fallback = FallbackSpec {
            threshold: 0.5,
            min_samples: 4,
        };
        for scan in [CandidateScan::Indexed, CandidateScan::Linear] {
            let mut p = oracle_policy(NilasConfig {
                fallback: Some(fallback),
                scan,
                ..NilasConfig::default()
            });
            // Healthy: the temporal cost steers a 5h VM to the 10h host.
            let request = vm(10, 5);
            assert_eq!(
                p.choose_host(&c, &request, SimTime::ZERO, None),
                Some(HostId(0)),
                "{scan}: healthy"
            );
            // Error crosses the threshold: cost zeroed, both occupied
            // hosts tie on waste and the lowest id wins — but crucially
            // the temporal term no longer differentiates them. Verify via
            // the public temporal_cost figure.
            p.on_model_health(0.9, 4);
            assert!(p.is_degraded());
            let host1 = c.host(HostId(1)).unwrap().clone();
            assert_eq!(
                p.temporal_cost(
                    &c,
                    &host1,
                    SimTime::ZERO + Duration::from_hours(5),
                    SimTime::ZERO
                ),
                0,
                "{scan}: degraded cost is zero"
            );
            // Too few samples never degrade; recovery needs < 80% of the
            // threshold.
            p.on_model_health(0.45, 4);
            assert!(p.is_degraded(), "{scan}: hysteresis holds at 0.45");
            p.on_model_health(0.3, 4);
            assert!(!p.is_degraded(), "{scan}: recovered below 0.4");
            assert_eq!(
                p.choose_host(&c, &vm(11, 5), SimTime::ZERO, None),
                Some(HostId(0)),
                "{scan}: model re-engaged"
            );
        }
        // Without a fallback spec, model health is ignored entirely.
        let mut p = oracle_policy(NilasConfig::default());
        p.on_model_health(10.0, 1000);
        assert!(!p.is_degraded());
    }

    #[test]
    fn cache_disabled_falls_back_to_linear() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap();
        let mut p = oracle_policy(NilasConfig {
            cache_refresh: None,
            ..NilasConfig::default()
        });
        let chosen = p.choose_host(&c, &vm(10, 5), SimTime::ZERO, None).unwrap();
        assert_eq!(chosen, HostId(0));
        assert_eq!(p.stats().cache_hits, 0);
        assert!(p.stats().cache_misses > 0);
    }
}
