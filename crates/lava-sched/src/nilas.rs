//! NILAS: Non-Invasive Lifetime-Aware Scheduling (§4.2).
//!
//! For every candidate host, NILAS repredicts the remaining lifetime of all
//! VMs currently on it, takes the maximum as the host's expected exit time,
//! and computes the temporal cost
//! `ΔT = max(vm_predicted_exit − host_exit, 0)` quantised into the bucket
//! boundaries of [`TemporalCostBuckets`]. The temporal cost sits one level
//! above the bin-packing score in the lexicographic scoring function, so it
//! only decides among hosts that are otherwise equivalent — hence
//! *non-invasive*.
//!
//! Because repredicting every VM on every host can become a bottleneck in
//! very large pools, the policy includes the host lifetime score cache of
//! Appendix G.3: a host's exit time is recomputed when a VM is added or
//! removed, when its deadline passes, or when the cached value is older than
//! a configurable refresh interval.

use crate::cluster::Cluster;
use crate::policy::PlacementPolicy;
use crate::scoring::{waste_minimization_score, ScoreVector};
use lava_core::host::{Host, HostId};
use lava_core::lifetime::TemporalCostBuckets;
use lava_core::time::{Duration, SimTime};
use lava_core::vm::Vm;
use lava_model::predictor::LifetimePredictor;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration for [`NilasPolicy`].
#[derive(Debug, Clone)]
pub struct NilasConfig {
    /// Temporal-cost bucket boundaries (defaults to the paper's).
    pub buckets: TemporalCostBuckets,
    /// How long a cached host exit time stays valid when nothing changes on
    /// the host. `None` disables caching (every scoring pass repredicts).
    pub cache_refresh: Option<Duration>,
    /// If `false`, use only the initial (scheduling-time) predictions — the
    /// "no reprediction" ablation of Fig. 16, which behaves like LA's
    /// one-shot view with NILAS's scoring.
    pub repredict: bool,
}

impl Default for NilasConfig {
    fn default() -> Self {
        NilasConfig {
            buckets: TemporalCostBuckets::default(),
            cache_refresh: Some(Duration::from_mins(1)),
            repredict: true,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    computed_at: SimTime,
    exit_time: SimTime,
}

/// Counters describing how much prediction work NILAS performed; used by
/// the model-latency and cache-ablation experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NilasStats {
    /// Number of individual VM repredictions issued.
    pub predictions: u64,
    /// Number of host scores answered from the cache.
    pub cache_hits: u64,
    /// Number of host scores recomputed.
    pub cache_misses: u64,
}

/// The NILAS placement policy.
pub struct NilasPolicy {
    predictor: Arc<dyn LifetimePredictor>,
    config: NilasConfig,
    cache: HashMap<HostId, CacheEntry>,
    stats: NilasStats,
}

impl NilasPolicy {
    /// Create the policy.
    pub fn new(predictor: Arc<dyn LifetimePredictor>, config: NilasConfig) -> NilasPolicy {
        NilasPolicy {
            predictor,
            config,
            cache: HashMap::new(),
            stats: NilasStats::default(),
        }
    }

    /// Create the policy with default configuration.
    pub fn with_defaults(predictor: Arc<dyn LifetimePredictor>) -> NilasPolicy {
        NilasPolicy::new(predictor, NilasConfig::default())
    }

    /// Prediction/cache counters accumulated so far.
    pub fn stats(&self) -> NilasStats {
        self.stats
    }

    /// The configured temporal-cost buckets.
    pub fn buckets(&self) -> &TemporalCostBuckets {
        &self.config.buckets
    }

    /// The (possibly cached) expected exit time of a host at `now`.
    pub fn host_exit_time(&mut self, cluster: &Cluster, host: &Host, now: SimTime) -> SimTime {
        if let (Some(refresh), Some(entry)) = (self.config.cache_refresh, self.cache.get(&host.id()))
        {
            let age = now.saturating_since(entry.computed_at);
            let deadline_passed = entry.exit_time < now;
            if age <= refresh && !deadline_passed {
                self.stats.cache_hits += 1;
                return entry.exit_time;
            }
        }
        self.stats.cache_misses += 1;
        let exit_time = if self.config.repredict {
            self.stats.predictions += host.vm_count() as u64;
            cluster.host_exit_time(host, self.predictor.as_ref(), now)
        } else {
            cluster.host_exit_time_initial(host, now)
        };
        self.cache.insert(
            host.id(),
            CacheEntry {
                computed_at: now,
                exit_time,
            },
        );
        exit_time
    }

    /// The quantised temporal cost of placing a VM expected to exit at
    /// `vm_exit` onto `host`.
    pub fn temporal_cost(
        &mut self,
        cluster: &Cluster,
        host: &Host,
        vm_exit: SimTime,
        now: SimTime,
    ) -> usize {
        let host_exit = self.host_exit_time(cluster, host, now);
        let delta = vm_exit.saturating_since(host_exit);
        self.config.buckets.cost(delta)
    }

    /// The predicted exit time of the VM being scheduled.
    fn vm_exit_time(&mut self, vm: &Vm, now: SimTime) -> SimTime {
        let remaining = if self.config.repredict || vm.initial_prediction().is_none() {
            self.stats.predictions += 1;
            self.predictor.predict_remaining(vm, now)
        } else {
            // One-shot view: remaining = initial prediction − uptime.
            vm.initial_prediction()
                .unwrap_or_default()
                .saturating_sub(vm.uptime(now))
        };
        now + remaining
    }

    fn invalidate(&mut self, host: HostId) {
        self.cache.remove(&host);
    }
}

impl PlacementPolicy for NilasPolicy {
    fn name(&self) -> &'static str {
        "nilas"
    }

    fn choose_host(
        &mut self,
        cluster: &Cluster,
        vm: &Vm,
        now: SimTime,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        let vm_exit = self.vm_exit_time(vm, now);
        let mut best: Option<(ScoreVector, HostId)> = None;
        // Collect feasible host ids first so that the cache can be consulted
        // with `&mut self` while iterating.
        let feasible: Vec<HostId> = cluster
            .feasible_hosts(vm.resources())
            .map(|h| h.id())
            .filter(|id| Some(*id) != exclude)
            .collect();
        for id in feasible {
            let host = cluster.host(id).expect("feasible host exists");
            let cost = self.temporal_cost(cluster, host, vm_exit, now) as f64;
            let score = ScoreVector::new(vec![
                cost,
                waste_minimization_score(host, vm.resources()),
            ]);
            match &best {
                Some((best_score, _)) if !score.is_better_than(best_score) => {}
                _ => best = Some((score, id)),
            }
        }
        best.map(|(_, id)| id)
    }

    fn on_vm_placed(&mut self, _cluster: &mut Cluster, _vm: lava_core::vm::VmId, host: HostId, _now: SimTime) {
        self.invalidate(host);
    }

    fn on_vm_exited(&mut self, _cluster: &mut Cluster, host: HostId, _now: SimTime) {
        self.invalidate(host);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::host::HostSpec;
    use lava_core::resources::Resources;
    use lava_core::vm::{VmId, VmSpec};
    use lava_model::predictor::OraclePredictor;

    fn cluster() -> Cluster {
        Cluster::with_uniform_hosts(4, HostSpec::new(Resources::cores_gib(32, 128)))
    }

    fn vm_at(id: u64, hours: u64, created: SimTime) -> Vm {
        Vm::new(
            VmId(id),
            VmSpec::builder(Resources::cores_gib(4, 16)).build(),
            created,
            Duration::from_hours(hours),
        )
    }

    fn vm(id: u64, hours: u64) -> Vm {
        vm_at(id, hours, SimTime::ZERO)
    }

    fn oracle_policy(config: NilasConfig) -> NilasPolicy {
        NilasPolicy::new(Arc::new(OraclePredictor::new()), config)
    }

    #[test]
    fn places_vm_on_host_it_does_not_outlive() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap(); // exits at 10h
        c.place(vm(2, 2), HostId(1)).unwrap(); // exits at 2h
        let mut p = oracle_policy(NilasConfig::default());
        // A 5h VM fits "inside" host 0 (ΔT = 0) but would extend host 1
        // (ΔT = 3h → cost 5); the paper's Figure 4 example.
        let chosen = p.choose_host(&c, &vm(10, 5), SimTime::ZERO, None).unwrap();
        assert_eq!(chosen, HostId(0));
        assert_eq!(p.name(), "nilas");
    }

    #[test]
    fn empty_host_is_least_preferred() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap();
        let mut p = oracle_policy(NilasConfig::default());
        let chosen = p.choose_host(&c, &vm(10, 1), SimTime::ZERO, None).unwrap();
        assert_eq!(chosen, HostId(0), "should fill the occupied host first");
    }

    #[test]
    fn repredictions_correct_mispredicted_hosts() {
        // Host 0 holds a VM that outlived its initial 1h prediction and will
        // actually run for 100h. With repredictions NILAS sees the host as
        // long-lived and happily places a 50h VM there; without, it thinks
        // the host is about to free up and pays a large temporal cost.
        let now = SimTime::ZERO + Duration::from_hours(5);
        let mut c = cluster();
        let mut long_vm = vm(1, 100);
        long_vm.set_initial_prediction(Duration::from_hours(1));
        c.place(long_vm, HostId(0)).unwrap();
        // Host 1 holds a genuinely short VM (exits at 6h).
        let mut short_vm = vm(2, 6);
        short_vm.set_initial_prediction(Duration::from_hours(6));
        c.place(short_vm, HostId(1)).unwrap();

        let incoming = vm_at(10, 50, now);

        let mut with_repred = oracle_policy(NilasConfig::default());
        assert_eq!(
            with_repred.choose_host(&c, &incoming, now, None),
            Some(HostId(0))
        );

        let mut without = oracle_policy(NilasConfig {
            repredict: false,
            ..NilasConfig::default()
        });
        // One-shot view: host 0 "exits at 1h" (already past) and host 1
        // "exits at 6h"; both look equally bad temporally (max ΔT bucket),
        // so bin packing decides — and both hosts look identical there too,
        // meaning the mispredicted host is no longer protected.
        let chosen = without.choose_host(&c, &incoming, now, None).unwrap();
        assert_eq!(chosen, HostId(0), "tie broken by host id under one-shot view");
    }

    #[test]
    fn cache_avoids_recomputation_within_refresh() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap();
        let mut p = oracle_policy(NilasConfig {
            cache_refresh: Some(Duration::from_mins(15)),
            ..NilasConfig::default()
        });
        let host = c.host(HostId(0)).unwrap().clone();
        let t0 = SimTime::ZERO;
        let _ = p.host_exit_time(&c, &host, t0);
        let misses_before = p.stats().cache_misses;
        let _ = p.host_exit_time(&c, &host, t0 + Duration::from_mins(5));
        assert_eq!(p.stats().cache_misses, misses_before);
        assert!(p.stats().cache_hits >= 1);
        // After the refresh interval the score is recomputed.
        let _ = p.host_exit_time(&c, &host, t0 + Duration::from_mins(30));
        assert_eq!(p.stats().cache_misses, misses_before + 1);
    }

    #[test]
    fn cache_invalidated_on_placement_and_exit() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap();
        let mut p = oracle_policy(NilasConfig {
            cache_refresh: Some(Duration::from_hours(1)),
            ..NilasConfig::default()
        });
        let host = c.host(HostId(0)).unwrap().clone();
        let _ = p.host_exit_time(&c, &host, SimTime::ZERO);
        p.on_vm_placed(&mut c, VmId(2), HostId(0), SimTime::ZERO);
        let misses_before = p.stats().cache_misses;
        let _ = p.host_exit_time(&c, &host, SimTime(1));
        assert_eq!(p.stats().cache_misses, misses_before + 1);

        let _ = p.host_exit_time(&c, &host, SimTime(2));
        p.on_vm_exited(&mut c, HostId(0), SimTime(2));
        let misses_before = p.stats().cache_misses;
        let _ = p.host_exit_time(&c, &host, SimTime(3));
        assert_eq!(p.stats().cache_misses, misses_before + 1);
    }

    #[test]
    fn cache_expires_when_host_deadline_passes() {
        let mut c = cluster();
        c.place(vm(1, 1), HostId(0)).unwrap();
        let mut p = oracle_policy(NilasConfig {
            cache_refresh: Some(Duration::from_hours(100)),
            ..NilasConfig::default()
        });
        let host = c.host(HostId(0)).unwrap().clone();
        let exit = p.host_exit_time(&c, &host, SimTime::ZERO);
        assert_eq!(exit, SimTime::ZERO + Duration::from_hours(1));
        // Past the cached exit time the entry must be recomputed even though
        // the refresh interval has not elapsed.
        let misses_before = p.stats().cache_misses;
        let _ = p.host_exit_time(&c, &host, SimTime::ZERO + Duration::from_hours(2));
        assert_eq!(p.stats().cache_misses, misses_before + 1);
    }

    #[test]
    fn no_feasible_host_returns_none() {
        let c = cluster();
        let mut p = oracle_policy(NilasConfig::default());
        let huge = Vm::new(
            VmId(1),
            VmSpec::builder(Resources::cores_gib(64, 256)).build(),
            SimTime::ZERO,
            Duration::from_hours(1),
        );
        assert_eq!(p.choose_host(&c, &huge, SimTime::ZERO, None), None);
    }
}
