//! The placement-policy interface and the scheduling error type.
//!
//! Every algorithm in this crate (baseline, LA-Binary, NILAS, LAVA)
//! implements [`PlacementPolicy`]: given the cluster state and a VM request,
//! pick the best feasible host. Hooks notify the policy of placements,
//! exits and periodic ticks so that stateful algorithms (NILAS's score
//! cache, LAVA's host state machine) can update their bookkeeping.

use crate::cluster::Cluster;
use lava_core::error::CoreError;
use lava_core::host::HostId;
use lava_core::time::SimTime;
use lava_core::vm::{Vm, VmId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// How a policy enumerates candidate hosts in `choose_host`.
///
/// Both modes produce identical placement decisions (a property-based
/// parity test enforces this); they differ only in cost. `Linear` is the
/// seed implementation — score every feasible host. `Indexed` walks the
/// pool's candidate indexes (state/class buckets, occupancy sets, the
/// exit-time order) and early-exits at the first preference level or
/// temporal-cost bucket that cannot be improved on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CandidateScan {
    /// Use the incremental candidate indexes (the default).
    #[default]
    Indexed,
    /// Score every feasible host with a full linear scan (reference
    /// implementation, kept for parity tests and benchmarks).
    Linear,
}

impl FromStr for CandidateScan {
    type Err = String;

    fn from_str(s: &str) -> Result<CandidateScan, String> {
        match s.to_ascii_lowercase().as_str() {
            "indexed" => Ok(CandidateScan::Indexed),
            "linear" => Ok(CandidateScan::Linear),
            other => Err(format!("unknown scan mode `{other}` (indexed|linear)")),
        }
    }
}

impl fmt::Display for CandidateScan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CandidateScan::Indexed => write!(f, "indexed"),
            CandidateScan::Linear => write!(f, "linear"),
        }
    }
}

/// Cache-effort counters produced by exit-time cache operations, absorbed
/// into [`crate::nilas::NilasStats`] by the policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Host exit times served from a valid cache entry.
    pub hits: u64,
    /// Host exit times recomputed.
    pub misses: u64,
    /// Individual VM lifetime predictions issued.
    pub predictions: u64,
}

/// A VM-to-host placement algorithm.
pub trait PlacementPolicy: Send {
    /// Short name used in reports and experiment output.
    fn name(&self) -> &'static str;

    /// Choose a host for `vm` among the feasible hosts of `cluster`,
    /// excluding `exclude` (used when picking a live-migration target so the
    /// current host is not chosen). Returns `None` if no feasible host
    /// exists.
    fn choose_host(
        &mut self,
        cluster: &Cluster,
        vm: &Vm,
        now: SimTime,
        exclude: Option<HostId>,
    ) -> Option<HostId>;

    /// Called after `vm` has been placed on `host`.
    fn on_vm_placed(&mut self, _cluster: &mut Cluster, _vm: VmId, _host: HostId, _now: SimTime) {}

    /// Called after a VM has exited from (or migrated away from) `host`.
    fn on_vm_exited(&mut self, _cluster: &mut Cluster, _host: HostId, _now: SimTime) {}

    /// Called periodically by the simulator so that deadline-based state
    /// transitions (LAVA's misprediction detection) can run.
    fn on_tick(&mut self, _cluster: &mut Cluster, _now: SimTime) {}
}

/// Errors returned by [`crate::scheduler::Scheduler`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// No feasible host had enough free resources for the VM.
    NoFeasibleHost {
        /// The VM that could not be placed.
        vm: VmId,
    },
    /// A bookkeeping error occurred while applying the placement.
    Core(CoreError),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoFeasibleHost { vm } => {
                write!(f, "no feasible host for vm {vm}")
            }
            ScheduleError::Core(e) => write!(f, "placement bookkeeping failed: {e}"),
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScheduleError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ScheduleError {
    fn from(e: CoreError) -> ScheduleError {
        ScheduleError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ScheduleError::NoFeasibleHost { vm: VmId(1) };
        assert!(e.to_string().contains("vm-1"));
        assert!(e.source().is_none());

        let core = CoreError::VmNotFound { vm: VmId(2) };
        let wrapped: ScheduleError = core.clone().into();
        assert_eq!(wrapped, ScheduleError::Core(core));
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScheduleError>();
    }
}
