//! The placement-policy interface and the scheduling error type.
//!
//! Every algorithm in this crate (baseline, LA-Binary, NILAS, LAVA)
//! implements [`PlacementPolicy`]: given the cluster state and a VM request,
//! pick the best feasible host. Hooks notify the policy of placements,
//! exits and periodic ticks so that stateful algorithms (NILAS's score
//! cache, LAVA's host state machine) can update their bookkeeping.

use crate::cluster::Cluster;
use lava_core::error::CoreError;
use lava_core::host::HostId;
use lava_core::time::SimTime;
use lava_core::vm::{Vm, VmId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// How a policy enumerates candidate hosts in `choose_host`.
///
/// Both modes produce identical placement decisions (a property-based
/// parity test enforces this); they differ only in cost. `Linear` is the
/// seed implementation — score every feasible host. `Indexed` walks the
/// pool's candidate indexes (state/class buckets, occupancy sets, the
/// exit-time order) and early-exits at the first preference level or
/// temporal-cost bucket that cannot be improved on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CandidateScan {
    /// Use the incremental candidate indexes (the default).
    #[default]
    Indexed,
    /// Score every feasible host with a full linear scan (reference
    /// implementation, kept for parity tests and benchmarks).
    Linear,
}

impl FromStr for CandidateScan {
    type Err = String;

    fn from_str(s: &str) -> Result<CandidateScan, String> {
        match s.to_ascii_lowercase().as_str() {
            "indexed" => Ok(CandidateScan::Indexed),
            "linear" => Ok(CandidateScan::Linear),
            other => Err(format!("unknown scan mode `{other}` (indexed|linear)")),
        }
    }
}

impl fmt::Display for CandidateScan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CandidateScan::Indexed => write!(f, "indexed"),
            CandidateScan::Linear => write!(f, "linear"),
        }
    }
}

/// Cache-effort counters produced by exit-time cache operations, absorbed
/// into [`crate::nilas::NilasStats`] by the policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Host exit times served from a valid cache entry.
    pub hits: u64,
    /// Host exit times recomputed.
    pub misses: u64,
    /// Individual VM lifetime predictions issued.
    pub predictions: u64,
}

/// When a lifetime-aware policy should stop trusting its model: once the
/// measured misprediction error crosses `threshold`, NILAS/LAVA zero their
/// temporal (exit-time) score terms and fall back toward best-fit — the
/// Theorem 1 regime, whose guarantee holds without lifetime knowledge. The
/// fallback is hysteretic: the policy re-engages the model once the error
/// drops below 80 % of the threshold, so a run hovering at the boundary
/// does not flap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FallbackSpec {
    /// Mean absolute log10 misprediction error above which the policy
    /// degrades to best-fit (e.g. `0.5` = predictions off by ~3× on
    /// average).
    pub threshold: f64,
    /// Minimum number of observed exits before the measured error is
    /// trusted at all.
    pub min_samples: usize,
}

impl Default for FallbackSpec {
    fn default() -> FallbackSpec {
        FallbackSpec {
            threshold: 0.5,
            min_samples: 32,
        }
    }
}

impl FallbackSpec {
    /// Whether a policy with this spec should be degraded given the
    /// currently measured error, its previous degraded state (hysteresis)
    /// and the observation count.
    pub fn should_degrade(&self, error: f64, samples: usize, currently_degraded: bool) -> bool {
        if samples < self.min_samples {
            return false;
        }
        if currently_degraded {
            error >= self.threshold * 0.8
        } else {
            error >= self.threshold
        }
    }
}

/// A VM-to-host placement algorithm.
pub trait PlacementPolicy: Send {
    /// Short name used in reports and experiment output.
    fn name(&self) -> &'static str;

    /// Choose a host for `vm` among the feasible hosts of `cluster`,
    /// excluding `exclude` (used when picking a live-migration target so the
    /// current host is not chosen). Returns `None` if no feasible host
    /// exists.
    fn choose_host(
        &mut self,
        cluster: &Cluster,
        vm: &Vm,
        now: SimTime,
        exclude: Option<HostId>,
    ) -> Option<HostId>;

    /// Called after `vm` has been placed on `host`.
    fn on_vm_placed(&mut self, _cluster: &mut Cluster, _vm: VmId, _host: HostId, _now: SimTime) {}

    /// Called after a VM has exited from (or migrated away from) `host`.
    fn on_vm_exited(&mut self, _cluster: &mut Cluster, _host: HostId, _now: SimTime) {}

    /// Called periodically by the simulator so that deadline-based state
    /// transitions (LAVA's misprediction detection) can run.
    fn on_tick(&mut self, _cluster: &mut Cluster, _now: SimTime) {}

    /// Called by the scheduler whenever its measured model health changes
    /// (after each observed exit): `error` is the mean absolute log10
    /// misprediction error over the scheduler's recent-exit window,
    /// `samples` the window's size. Policies with a [`FallbackSpec`] use
    /// this to degrade toward best-fit; the default implementation ignores
    /// model health entirely.
    fn on_model_health(&mut self, _error: f64, _samples: usize) {}
}

/// Errors returned by [`crate::scheduler::Scheduler`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// No feasible host had enough free resources for the VM.
    NoFeasibleHost {
        /// The VM that could not be placed.
        vm: VmId,
    },
    /// A bookkeeping error occurred while applying the placement.
    Core(CoreError),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoFeasibleHost { vm } => {
                write!(f, "no feasible host for vm {vm}")
            }
            ScheduleError::Core(e) => write!(f, "placement bookkeeping failed: {e}"),
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScheduleError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ScheduleError {
    fn from(e: CoreError) -> ScheduleError {
        ScheduleError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ScheduleError::NoFeasibleHost { vm: VmId(1) };
        assert!(e.to_string().contains("vm-1"));
        assert!(e.source().is_none());

        let core = CoreError::VmNotFound { vm: VmId(2) };
        let wrapped: ScheduleError = core.clone().into();
        assert_eq!(wrapped, ScheduleError::Core(core));
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScheduleError>();
    }

    #[test]
    fn fallback_spec_is_hysteretic_and_needs_samples() {
        let spec = FallbackSpec::default();
        assert_eq!(spec.threshold, 0.5);
        // Not enough samples: never degrade, whatever the error.
        assert!(!spec.should_degrade(10.0, spec.min_samples - 1, false));
        // Healthy model stays engaged below the threshold.
        assert!(!spec.should_degrade(0.49, spec.min_samples, false));
        assert!(spec.should_degrade(0.5, spec.min_samples, false));
        // Hysteresis: once degraded, recovery needs error < 0.8 × threshold.
        assert!(spec.should_degrade(0.45, spec.min_samples, true));
        assert!(!spec.should_degrade(0.39, spec.min_samples, true));
        // Round-trips through serde.
        let json = serde_json::to_string(&spec).unwrap();
        let back: FallbackSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
