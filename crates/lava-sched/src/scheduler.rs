//! The scheduler driver: the mini-Borg Prime loop that ties a cluster, a
//! placement policy and a lifetime predictor together.
//!
//! The driver is what the simulator (and the examples) talk to: it records
//! the initial prediction on every VM, asks the policy for a host, applies
//! the placement, routes exit events and periodic ticks to the policy, and
//! implements live migration (used by defragmentation and maintenance).

use crate::cluster::Cluster;
use crate::policy::{PlacementPolicy, ScheduleError};
use lava_core::cell::{CellId, CellSummary};
use lava_core::error::CoreError;
use lava_core::host::HostId;
use lava_core::time::SimTime;
use lava_core::vm::{Vm, VmId};
use lava_model::predictor::LifetimePredictor;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Counters describing what the scheduler did; consumed by the simulator's
/// metric collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// VMs successfully placed.
    pub placed: u64,
    /// VM placement requests that found no feasible host.
    pub failed: u64,
    /// VM exits processed.
    pub exited: u64,
    /// Live migrations performed.
    pub migrations: u64,
}

/// The deterministic size of one placement decision's work, captured from
/// cluster state at decision time.
///
/// The serving tier converts this into a virtual service time (its latency
/// model): using measured wall-clock time would make replays
/// machine-dependent, while host and live-VM counts are bit-reproducible
/// and are what candidate generation and scoring actually scale with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionCost {
    /// Hosts in the cluster at decision time.
    pub hosts: usize,
    /// Live VMs in the cluster at decision time.
    pub live_vms: usize,
}

/// One scheduler action, emitted on the scheduler's event stream when event
/// logging is enabled (see [`Scheduler::enable_event_log`]).
///
/// The stream is how external observers (the `lava-sim` experiment loop's
/// `SimObserver`s) learn about placements, rejections, exits and live
/// migrations without the scheduler knowing anything about metric
/// collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerEvent {
    /// A VM was placed on a host.
    Placed {
        /// The placed VM.
        vm: VmId,
        /// The chosen host.
        host: HostId,
        /// When the placement happened.
        at: SimTime,
    },
    /// A VM placement request found no feasible host.
    Rejected {
        /// The VM that could not be placed.
        vm: VmId,
        /// When the request was rejected.
        at: SimTime,
    },
    /// A VM exited from a host.
    Exited {
        /// The VM that exited.
        vm: VmId,
        /// The host it was on.
        host: HostId,
        /// When the exit was processed.
        at: SimTime,
    },
    /// A VM was live-migrated between hosts.
    Migrated {
        /// The migrated VM.
        vm: VmId,
        /// The source host.
        from: HostId,
        /// The target host.
        to: HostId,
        /// When the migration happened.
        at: SimTime,
    },
}

/// A bounded window of observed misprediction residuals: for each VM exit
/// the scheduler compares the scheduling-time total-lifetime prediction
/// against the lifetime actually observed (exit time − creation time) and
/// records the signed log10 residual `log10(observed) − log10(predicted)`.
///
/// Two consumers read it:
///
/// * **model health** — the mean *absolute* residual over the window (kept
///   as a running sum, O(1) per exit), pushed to the policy via
///   [`PlacementPolicy::on_model_health`] and surfaced on
///   [`CellSummary::misprediction_log10`] for misprediction-aware routing;
/// * **recalibration** — [`ModelHealth::take_residuals`] drains the signed
///   residuals so an online recalibrator can fit a correction against
///   observations made *since its last fit* (draining prevents one biased
///   era from being corrected twice).
#[derive(Debug, Default)]
pub struct ModelHealth {
    residuals: std::collections::VecDeque<f64>,
    abs_sum: f64,
}

impl ModelHealth {
    /// Window size: enough exits to average over, small enough that the
    /// health signal tracks a mid-run model swap within a few thousand
    /// simulated seconds at production exit rates.
    pub const WINDOW: usize = 256;

    fn observe(&mut self, residual: f64) {
        if !residual.is_finite() {
            return;
        }
        if self.residuals.len() == Self::WINDOW {
            if let Some(old) = self.residuals.pop_front() {
                self.abs_sum -= old.abs();
            }
        }
        self.residuals.push_back(residual);
        self.abs_sum += residual.abs();
    }

    /// Mean absolute log10 error over the window (0 when empty).
    pub fn mean_abs_error(&self) -> f64 {
        if self.residuals.is_empty() {
            0.0
        } else {
            // Guard against accumulated floating-point drift going
            // fractionally negative on an all-zero window.
            (self.abs_sum / self.residuals.len() as f64).max(0.0)
        }
    }

    /// Number of residuals currently in the window.
    pub fn len(&self) -> usize {
        self.residuals.len()
    }

    /// Whether no exits have been observed yet.
    pub fn is_empty(&self) -> bool {
        self.residuals.is_empty()
    }

    /// Drain the signed residuals (oldest first), resetting the window.
    pub fn take_residuals(&mut self) -> Vec<f64> {
        self.abs_sum = 0.0;
        self.residuals.drain(..).collect()
    }
}

/// The scheduling driver.
pub struct Scheduler {
    cluster: Cluster,
    policy: Box<dyn PlacementPolicy>,
    predictor: Arc<dyn LifetimePredictor>,
    stats: SchedulerStats,
    /// Event stream buffer; populated only while event logging is enabled
    /// so the hot path stays allocation-free by default.
    events: Vec<SchedulerEvent>,
    log_events: bool,
    /// Misprediction observations from exited VMs.
    model_health: ModelHealth,
}

impl Scheduler {
    /// Create a scheduler over a cluster with the given policy and
    /// predictor.
    pub fn new(
        cluster: Cluster,
        policy: Box<dyn PlacementPolicy>,
        predictor: Arc<dyn LifetimePredictor>,
    ) -> Scheduler {
        Scheduler {
            cluster,
            policy,
            predictor,
            stats: SchedulerStats::default(),
            events: Vec::new(),
            log_events: false,
            model_health: ModelHealth::default(),
        }
    }

    /// Start recording [`SchedulerEvent`]s. Events accumulate until drained
    /// with [`Scheduler::take_events`]; logging is off by default so plain
    /// scheduling pays no bookkeeping cost.
    pub fn enable_event_log(&mut self) {
        self.log_events = true;
    }

    /// Drain and return the events recorded since the last call.
    pub fn take_events(&mut self) -> Vec<SchedulerEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drain the recorded events by swapping them into `buffer` (which must
    /// be empty). Callers that drain once per trace event reuse one scratch
    /// buffer this way, keeping the replay loop allocation-free in steady
    /// state — `take_events` would leave a zero-capacity `Vec` behind and
    /// force a reallocation on the next push.
    pub fn swap_events(&mut self, buffer: &mut Vec<SchedulerEvent>) {
        debug_assert!(buffer.is_empty(), "swap_events expects a drained buffer");
        std::mem::swap(&mut self.events, buffer);
    }

    fn record(&mut self, event: SchedulerEvent) {
        if self.log_events {
            self.events.push(event);
        }
    }

    /// The cluster state.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the cluster state (used by the defragmentation
    /// simulator to mark hosts unavailable).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Replace the placement policy mid-run.
    ///
    /// Used by the simulator to model the production rollout: VMs placed
    /// during warm-up use the lifetime-agnostic baseline, after which the
    /// evaluated algorithm takes over (Appendix F / G.2).
    pub fn set_policy(&mut self, policy: Box<dyn PlacementPolicy>) {
        self.policy = policy;
    }

    /// The predictor in use.
    pub fn predictor(&self) -> &Arc<dyn LifetimePredictor> {
        &self.predictor
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Extract a bounded-staleness [`CellSummary`] of this scheduler's
    /// cluster, as consumed by a fleet routing tier.
    ///
    /// The capacity figures come straight from the pool's O(1)
    /// incremental aggregates; the predicted exit-time profile repredicts
    /// a deterministic **sample** of at most `sample_cap` live VMs (every
    /// ⌈n/cap⌉-th VM in placement order, via `Cluster::sampled_vms`)
    /// through this scheduler's predictor. Extraction is therefore
    /// O(cap), not O(cell size) — it runs once per cell per refresh epoch
    /// on the fleet hot path. Deterministic: the same placement/removal
    /// history always yields the same summary.
    pub fn cell_summary(&self, cell: CellId, now: SimTime, sample_cap: usize) -> CellSummary {
        let pool = self.cluster.pool();
        let live_vms = self.cluster.vm_count();
        let mut mean_predicted_exit = now;
        if live_vms > 0 && sample_cap > 0 {
            let mut sum: u128 = 0;
            let mut count: u64 = 0;
            for vm in self.cluster.sampled_vms(sample_cap) {
                let exit = now + self.predictor.predict_remaining(vm, now);
                sum += exit.as_secs() as u128;
                count += 1;
            }
            if count > 0 {
                mean_predicted_exit = SimTime((sum / count as u128) as u64);
            }
        }
        CellSummary {
            cell,
            as_of: now,
            hosts: pool.host_count(),
            empty_hosts: pool.empty_host_count(),
            capacity: pool.total_capacity(),
            free: pool.total_free(),
            live_vms,
            mean_predicted_exit,
            misprediction_log10: self.model_health.mean_abs_error(),
        }
    }

    /// Schedule a new VM at `now`.
    ///
    /// Records the initial prediction on the VM record, asks the policy for
    /// a host, and applies the placement.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoFeasibleHost`] if no host can fit the VM,
    /// or a wrapped bookkeeping error.
    pub fn schedule(&mut self, mut vm: Vm, now: SimTime) -> Result<HostId, ScheduleError> {
        let prediction = self.predictor.predict_remaining(&vm, now);
        vm.set_initial_prediction(prediction);
        let vm_id = vm.id();
        let Some(host) = self.policy.choose_host(&self.cluster, &vm, now, None) else {
            self.stats.failed += 1;
            self.record(SchedulerEvent::Rejected { vm: vm_id, at: now });
            return Err(ScheduleError::NoFeasibleHost { vm: vm_id });
        };
        self.cluster.place(vm, host)?;
        self.policy
            .on_vm_placed(&mut self.cluster, vm_id, host, now);
        self.stats.placed += 1;
        self.record(SchedulerEvent::Placed {
            vm: vm_id,
            host,
            at: now,
        });
        Ok(host)
    }

    /// Schedule a new VM at `now`, also reporting the [`DecisionCost`] of
    /// the decision — the deterministic size of the work the policy just
    /// did, captured from cluster state at decision time.
    ///
    /// The serving tier uses this as the service-time input for its
    /// virtual-clock latency model: wall-clock timing would make replays
    /// machine-dependent, whereas (host count, live-VM count) reproduces
    /// bit-identically and tracks how decision work actually scales.
    ///
    /// # Errors
    ///
    /// Same contract as [`Scheduler::schedule`]; the cost is reported for
    /// rejected decisions too (a "no feasible host" answer still cost a
    /// candidate scan).
    pub fn schedule_costed(
        &mut self,
        vm: Vm,
        now: SimTime,
    ) -> (Result<HostId, ScheduleError>, DecisionCost) {
        let cost = DecisionCost {
            hosts: self.cluster.pool().host_count(),
            live_vms: self.cluster.vm_count(),
        };
        (self.schedule(vm, now), cost)
    }

    /// Process a VM exit at `now`. Returns the host it was on.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VmNotFound`] if the VM is not live (e.g. its
    /// creation was rejected earlier).
    pub fn exit(&mut self, vm: VmId, now: SimTime) -> Result<HostId, CoreError> {
        let (record, host) = self.cluster.remove(vm)?;
        if let Some(predicted) = record.initial_prediction() {
            // Observed lifetime is "however long it actually ran" — honest
            // even for VMs killed early by an incident, which *is* a
            // misprediction from the model's point of view.
            let observed = record.uptime(now);
            let residual = observed.log10_secs() - predicted.log10_secs();
            self.model_health.observe(residual);
            self.policy
                .on_model_health(self.model_health.mean_abs_error(), self.model_health.len());
        }
        self.policy.on_vm_exited(&mut self.cluster, host, now);
        self.stats.exited += 1;
        self.record(SchedulerEvent::Exited { vm, host, at: now });
        Ok(host)
    }

    /// The scheduler's current model-health window: `(mean absolute log10
    /// misprediction error, number of observed exits in the window)`.
    pub fn model_health(&self) -> (f64, usize) {
        (self.model_health.mean_abs_error(), self.model_health.len())
    }

    /// Drain the signed log10 misprediction residuals accumulated since the
    /// last drain (oldest first). Used by the simulation's online
    /// recalibrator to fit a correction from fresh observations only.
    pub fn take_model_residuals(&mut self) -> Vec<f64> {
        self.model_health.take_residuals()
    }

    /// Periodic tick: lets the policy run deadline-based corrections.
    pub fn tick(&mut self, now: SimTime) {
        self.policy.on_tick(&mut self.cluster, now);
    }

    /// Choose a live-migration target for a VM (excluding its current
    /// host), using the same policy as initial placement (§4.4).
    pub fn choose_migration_target(&mut self, vm: VmId, now: SimTime) -> Option<HostId> {
        let record = self.cluster.vm(vm)?.clone();
        let exclude = record.host();
        self.policy
            .choose_host(&self.cluster, &record, now, exclude)
    }

    /// Live-migrate a VM to `target`. Returns the source host.
    ///
    /// # Errors
    ///
    /// Fails (leaving the VM in place) if the VM is unknown or the target
    /// cannot fit it.
    pub fn migrate(&mut self, vm: VmId, target: HostId, now: SimTime) -> Result<HostId, CoreError> {
        let source = self.cluster.migrate(vm, target)?;
        self.policy.on_vm_exited(&mut self.cluster, source, now);
        self.policy.on_vm_placed(&mut self.cluster, vm, target, now);
        self.stats.migrations += 1;
        self.record(SchedulerEvent::Migrated {
            vm,
            from: source,
            to: target,
            at: now,
        });
        Ok(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::WasteMinimizationPolicy;
    use crate::nilas::NilasPolicy;
    use lava_core::host::HostSpec;
    use lava_core::resources::Resources;
    use lava_core::time::Duration;
    use lava_core::vm::VmSpec;
    use lava_model::predictor::OraclePredictor;

    fn scheduler(policy: Box<dyn PlacementPolicy>) -> Scheduler {
        let cluster = Cluster::with_uniform_hosts(4, HostSpec::new(Resources::cores_gib(32, 128)));
        Scheduler::new(cluster, policy, Arc::new(OraclePredictor::new()))
    }

    fn vm(id: u64, hours: u64) -> Vm {
        Vm::new(
            VmId(id),
            VmSpec::builder(Resources::cores_gib(4, 16)).build(),
            SimTime::ZERO,
            Duration::from_hours(hours),
        )
    }

    #[test]
    fn schedule_and_exit_lifecycle() {
        let mut s = scheduler(Box::new(WasteMinimizationPolicy::new()));
        let host = s.schedule(vm(1, 5), SimTime::ZERO).unwrap();
        assert_eq!(s.cluster().vm_count(), 1);
        assert_eq!(
            s.cluster().vm(VmId(1)).unwrap().initial_prediction(),
            Some(Duration::from_hours(5))
        );
        let exited_from = s
            .exit(VmId(1), SimTime::ZERO + Duration::from_hours(5))
            .unwrap();
        assert_eq!(exited_from, host);
        assert_eq!(s.cluster().vm_count(), 0);
        let stats = s.stats();
        assert_eq!(stats.placed, 1);
        assert_eq!(stats.exited, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(s.policy_name(), "waste-min");
    }

    #[test]
    fn schedule_failure_counts() {
        let mut s = scheduler(Box::new(WasteMinimizationPolicy::new()));
        let huge = Vm::new(
            VmId(9),
            VmSpec::builder(Resources::cores_gib(128, 512)).build(),
            SimTime::ZERO,
            Duration::from_hours(1),
        );
        let err = s.schedule(huge, SimTime::ZERO).unwrap_err();
        assert_eq!(err, ScheduleError::NoFeasibleHost { vm: VmId(9) });
        assert_eq!(s.stats().failed, 1);
    }

    #[test]
    fn exit_unknown_vm_errors() {
        let mut s = scheduler(Box::new(WasteMinimizationPolicy::new()));
        assert!(s.exit(VmId(5), SimTime::ZERO).is_err());
    }

    #[test]
    fn migration_uses_policy_and_counts() {
        let predictor = Arc::new(OraclePredictor::new());
        let mut s = scheduler(Box::new(NilasPolicy::with_defaults(predictor)));
        s.schedule(vm(1, 10), SimTime::ZERO).unwrap();
        s.schedule(vm(2, 10), SimTime::ZERO).unwrap();
        let source = s.cluster().vm(VmId(2)).unwrap().host().unwrap();
        // Drain the source host: mark it unavailable and move VM 2 off it.
        s.cluster_mut()
            .host_mut(source)
            .unwrap()
            .set_unavailable(true);
        let target = s.choose_migration_target(VmId(2), SimTime::ZERO).unwrap();
        assert_ne!(target, source);
        let from = s.migrate(VmId(2), target, SimTime::ZERO).unwrap();
        assert_eq!(from, source);
        assert_eq!(s.stats().migrations, 1);
        assert_eq!(s.cluster().vm(VmId(2)).unwrap().host(), Some(target));
    }

    #[test]
    fn event_log_records_lifecycle_when_enabled() {
        let mut s = scheduler(Box::new(WasteMinimizationPolicy::new()));
        // Disabled by default: nothing is recorded.
        s.schedule(vm(1, 5), SimTime::ZERO).unwrap();
        assert!(s.take_events().is_empty());

        s.enable_event_log();
        let host = s.schedule(vm(2, 5), SimTime::ZERO).unwrap();
        let exit_at = SimTime::ZERO + Duration::from_hours(5);
        s.exit(VmId(2), exit_at).unwrap();
        let huge = Vm::new(
            VmId(3),
            VmSpec::builder(Resources::cores_gib(128, 512)).build(),
            SimTime::ZERO,
            Duration::from_hours(1),
        );
        let _ = s.schedule(huge, exit_at);
        let events = s.take_events();
        assert_eq!(
            events,
            vec![
                SchedulerEvent::Placed {
                    vm: VmId(2),
                    host,
                    at: SimTime::ZERO
                },
                SchedulerEvent::Exited {
                    vm: VmId(2),
                    host,
                    at: exit_at
                },
                SchedulerEvent::Rejected {
                    vm: VmId(3),
                    at: exit_at
                },
            ]
        );
        // Draining resets the buffer.
        assert!(s.take_events().is_empty());
    }

    #[test]
    fn predictor_accessor_returns_shared_instance() {
        let s = scheduler(Box::new(WasteMinimizationPolicy::new()));
        assert_eq!(s.predictor().name(), "oracle");
    }

    #[test]
    fn schedule_costed_reports_decision_time_state() {
        let mut s = scheduler(Box::new(WasteMinimizationPolicy::new()));
        let (placed, cost) = s.schedule_costed(vm(1, 4), SimTime::ZERO);
        assert!(placed.is_ok());
        assert_eq!(
            cost,
            DecisionCost {
                hosts: 4,
                live_vms: 0
            }
        );

        // The second decision sees the first VM live.
        let (placed, cost) = s.schedule_costed(vm(2, 4), SimTime::ZERO);
        assert!(placed.is_ok());
        assert_eq!(
            cost,
            DecisionCost {
                hosts: 4,
                live_vms: 1
            }
        );

        // Cost is reported for rejected decisions too.
        let huge = Vm::new(
            VmId(3),
            VmSpec::builder(Resources::cores_gib(1000, 4000)).build(),
            SimTime::ZERO,
            Duration::from_hours(1),
        );
        let (placed, cost) = s.schedule_costed(huge, SimTime::ZERO);
        assert!(placed.is_err());
        assert_eq!(cost.live_vms, 2);
    }

    #[test]
    fn cell_summary_reflects_cluster_state() {
        let mut s = scheduler(Box::new(WasteMinimizationPolicy::new()));
        let empty = s.cell_summary(CellId(2), SimTime::ZERO, 64);
        assert_eq!(empty.cell, CellId(2));
        assert_eq!(empty.hosts, 4);
        assert_eq!(empty.empty_hosts, 4);
        assert_eq!(empty.live_vms, 0);
        assert_eq!(empty.free, empty.capacity);
        assert_eq!(empty.mean_predicted_exit, SimTime::ZERO);

        s.schedule(vm(1, 4), SimTime::ZERO).unwrap();
        s.schedule(vm(2, 8), SimTime::ZERO).unwrap();
        let summary = s.cell_summary(CellId(2), SimTime::ZERO, 64);
        assert_eq!(summary.live_vms, 2);
        assert!(summary.empty_hosts < 4);
        assert!(summary.free.cpu_milli < summary.capacity.cpu_milli);
        // Oracle predictions: exits at 4h and 8h, mean 6h.
        assert_eq!(
            summary.mean_predicted_exit,
            SimTime::ZERO + Duration::from_hours(6)
        );
        assert_eq!(summary.as_of, SimTime::ZERO);
    }

    #[test]
    fn model_health_tracks_misprediction_on_exit() {
        let mut s = scheduler(Box::new(WasteMinimizationPolicy::new()));
        assert_eq!(s.model_health(), (0.0, 0));

        // Oracle prediction honoured exactly: zero residual.
        s.schedule(vm(1, 5), SimTime::ZERO).unwrap();
        s.exit(VmId(1), SimTime::ZERO + Duration::from_hours(5))
            .unwrap();
        let (error, samples) = s.model_health();
        assert_eq!(samples, 1);
        assert!(error.abs() < 1e-12, "on-time exit has zero residual");

        // A VM killed at 1/10th of its predicted lifetime is one decade of
        // log10 error.
        s.schedule(vm(2, 10), SimTime::ZERO).unwrap();
        s.exit(VmId(2), SimTime::ZERO + Duration::from_hours(1))
            .unwrap();
        let (error, samples) = s.model_health();
        assert_eq!(samples, 2);
        assert!((error - 0.5).abs() < 1e-9, "mean of 0 and 1.0, got {error}");

        // The summary surfaces the same figure, and draining resets it.
        let summary = s.cell_summary(CellId(0), SimTime::ZERO, 64);
        assert!((summary.misprediction_log10 - error).abs() < 1e-12);
        let residuals = s.take_model_residuals();
        assert_eq!(residuals.len(), 2);
        assert!((residuals[1] + 1.0).abs() < 1e-9, "signed, oldest first");
        assert_eq!(s.model_health(), (0.0, 0));
    }

    #[test]
    fn model_health_window_is_bounded() {
        let mut health = ModelHealth::default();
        for _ in 0..ModelHealth::WINDOW {
            health.observe(2.0);
        }
        assert_eq!(health.len(), ModelHealth::WINDOW);
        assert!((health.mean_abs_error() - 2.0).abs() < 1e-9);
        // New observations evict the oldest; non-finite ones are dropped.
        health.observe(f64::NAN);
        health.observe(f64::INFINITY);
        assert_eq!(health.len(), ModelHealth::WINDOW);
        for _ in 0..ModelHealth::WINDOW {
            health.observe(0.0);
        }
        assert_eq!(health.len(), ModelHealth::WINDOW);
        assert_eq!(health.mean_abs_error(), 0.0);
    }

    #[test]
    fn cell_summary_sampling_is_deterministic_and_bounded() {
        let cluster = Cluster::with_uniform_hosts(64, HostSpec::new(Resources::cores_gib(64, 256)));
        let mut s = Scheduler::new(
            cluster,
            Box::new(WasteMinimizationPolicy::new()),
            Arc::new(OraclePredictor::new()),
        );
        for i in 0..200u64 {
            s.schedule(vm(i, 1 + i % 50), SimTime::ZERO).unwrap();
        }
        // A capped sample still yields a stable profile, identical across
        // calls on identical state.
        let a = s.cell_summary(CellId(0), SimTime::ZERO, 16);
        let b = s.cell_summary(CellId(0), SimTime::ZERO, 16);
        assert_eq!(a, b);
        let full = s.cell_summary(CellId(0), SimTime::ZERO, usize::MAX);
        // Both profiles land inside the lifetime range.
        for summary in [a, full] {
            assert!(summary.mean_predicted_exit > SimTime::ZERO);
            assert!(summary.mean_predicted_exit <= SimTime::ZERO + Duration::from_hours(50));
        }
    }
}
