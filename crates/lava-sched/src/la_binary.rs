//! LA-Binary: the prior state of the art (Barbalho et al., MLSys 2023), as
//! re-implemented for comparison in §5.3 of the LAVA paper.
//!
//! LA predicts a VM's lifetime **once**, at creation, and classifies it as
//! short- or long-lived against a two-hour threshold. Each host's lifetime
//! class is the class implied by the longest *initially predicted* remaining
//! time of any VM on it — predictions are never updated, which is exactly
//! the weakness LAVA attacks. Placement prefers a host of the same class
//! (using Best Fit within the class), then any suitable host, then an empty
//! host.

use crate::cluster::Cluster;
use crate::policy::PlacementPolicy;
use crate::scoring::{best_fit_score, ScoreVector};
use lava_core::host::{Host, HostId};
use lava_core::time::{Duration, SimTime};
use lava_core::vm::Vm;
use lava_model::predictor::LifetimePredictor;
use std::sync::Arc;

/// Configuration for [`LaBinaryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaBinaryConfig {
    /// The short/long classification threshold (the LA paper uses 2 hours).
    pub threshold: Duration,
}

impl Default for LaBinaryConfig {
    fn default() -> Self {
        LaBinaryConfig {
            threshold: Duration::from_hours(2),
        }
    }
}

/// The LA-Binary placement policy.
pub struct LaBinaryPolicy {
    predictor: Arc<dyn LifetimePredictor>,
    config: LaBinaryConfig,
}

impl LaBinaryPolicy {
    /// Create the policy with the given one-shot predictor.
    pub fn new(predictor: Arc<dyn LifetimePredictor>, config: LaBinaryConfig) -> LaBinaryPolicy {
        LaBinaryPolicy { predictor, config }
    }

    /// Whether a predicted lifetime counts as long-lived.
    fn is_long(&self, lifetime: Duration) -> bool {
        lifetime > self.config.threshold
    }

    /// The binary class of a host, based on initial predictions only:
    /// `None` for an empty host, otherwise `Some(is_long)`.
    fn host_class(&self, cluster: &Cluster, host: &Host, now: SimTime) -> Option<bool> {
        if host.is_empty() {
            return None;
        }
        let exit = cluster.host_exit_time_initial(host, now);
        Some(self.is_long(exit.saturating_since(now)))
    }
}

impl PlacementPolicy for LaBinaryPolicy {
    fn name(&self) -> &'static str {
        "la-binary"
    }

    fn choose_host(
        &mut self,
        cluster: &Cluster,
        vm: &Vm,
        now: SimTime,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        // One-shot prediction: reuse the initial prediction if the VM has
        // one (e.g. when picking a migration target), otherwise predict now
        // and treat it as the VM's fixed lifetime.
        let predicted = vm
            .initial_prediction()
            .unwrap_or_else(|| self.predictor.predict_remaining(vm, now));
        let vm_long = self.is_long(predicted);

        crate::baseline::argmin_host(cluster, vm, exclude, |host| {
            let preference = match self.host_class(cluster, host, now) {
                Some(class) if class == vm_long => 0.0, // same lifetime class
                Some(_) => 1.0,                         // other suitable host
                None => 2.0,                            // previously empty host
            };
            ScoreVector::new([preference, best_fit_score(host, vm.resources())])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::host::HostSpec;
    use lava_core::resources::Resources;
    use lava_core::vm::{VmId, VmSpec};
    use lava_model::predictor::OraclePredictor;

    fn cluster() -> Cluster {
        Cluster::with_uniform_hosts(4, HostSpec::new(Resources::cores_gib(32, 128)))
    }

    fn vm(id: u64, hours: u64) -> Vm {
        Vm::new(
            VmId(id),
            VmSpec::builder(Resources::cores_gib(4, 16)).build(),
            SimTime::ZERO,
            Duration::from_hours(hours),
        )
    }

    fn placed_vm(c: &mut Cluster, id: u64, hours: u64, host: HostId, predicted_hours: u64) {
        let mut v = vm(id, hours);
        v.set_initial_prediction(Duration::from_hours(predicted_hours));
        c.place(v, host).unwrap();
    }

    fn policy() -> LaBinaryPolicy {
        LaBinaryPolicy::new(Arc::new(OraclePredictor::new()), LaBinaryConfig::default())
    }

    #[test]
    fn prefers_host_of_same_class() {
        let mut c = cluster();
        placed_vm(&mut c, 1, 100, HostId(0), 100); // long host
        placed_vm(&mut c, 2, 1, HostId(1), 1); // short host
        let mut p = policy();

        // A long-lived VM goes to the long host.
        let long_vm = vm(10, 50);
        assert_eq!(
            p.choose_host(&c, &long_vm, SimTime::ZERO, None),
            Some(HostId(0))
        );
        // A short-lived VM goes to the short host.
        let short_vm = vm(11, 1);
        assert_eq!(
            p.choose_host(&c, &short_vm, SimTime::ZERO, None),
            Some(HostId(1))
        );
        assert_eq!(p.name(), "la-binary");
    }

    #[test]
    fn empty_host_is_last_resort() {
        let mut c = cluster();
        placed_vm(&mut c, 1, 1, HostId(0), 1); // short host only
        let mut p = policy();
        let long_vm = vm(10, 50);
        // No long host exists: prefer the mismatched non-empty host over an
        // empty one.
        assert_eq!(
            p.choose_host(&c, &long_vm, SimTime::ZERO, None),
            Some(HostId(0))
        );
    }

    #[test]
    fn does_not_correct_mispredictions() {
        let mut c = cluster();
        // VM 1 was predicted to live 1h but actually lives 100h. At t=50h it
        // is still running, yet LA still believes the host frees up at 1h
        // and therefore classifies the host as short.
        placed_vm(&mut c, 1, 100, HostId(0), 1);
        let mut p = policy();
        let now = SimTime::ZERO + Duration::from_hours(50);

        let mut short_vm = Vm::new(
            VmId(10),
            VmSpec::builder(Resources::cores_gib(4, 16)).build(),
            now,
            Duration::from_hours(1),
        );
        short_vm.set_initial_prediction(Duration::from_hours(1));
        // The mispredicted host is still treated as a "short" host.
        assert_eq!(p.choose_host(&c, &short_vm, now, None), Some(HostId(0)));
    }

    #[test]
    fn falls_back_to_empty_host_when_nothing_else_fits() {
        let c = cluster();
        let mut p = policy();
        assert_eq!(
            p.choose_host(&c, &vm(1, 1), SimTime::ZERO, None),
            Some(HostId(0))
        );
    }
}
