//! Cluster state: a pool of hosts plus the registry of live VM records.
//!
//! The scheduler algorithms need both views: the hosts (occupancy, LAVA
//! state) and the VM records (uptime, initial predictions) so that they can
//! repredict the remaining lifetime of every VM on a candidate host.

use lava_core::error::CoreError;
use lava_core::host::{Host, HostId, HostSpec};
use lava_core::pool::{Pool, PoolId};
use lava_core::resources::Resources;
use lava_core::time::SimTime;
use lava_core::vm::{Vm, VmId};
use lava_model::predictor::LifetimePredictor;
use std::collections::BTreeMap;

/// A pool of hosts together with the live VM records.
#[derive(Debug, Clone)]
pub struct Cluster {
    pool: Pool,
    vms: BTreeMap<VmId, Vm>,
}

impl Cluster {
    /// Create a cluster around an existing pool.
    pub fn new(pool: Pool) -> Cluster {
        Cluster {
            pool,
            vms: BTreeMap::new(),
        }
    }

    /// Create a cluster of `hosts` identical hosts.
    pub fn with_uniform_hosts(hosts: usize, spec: HostSpec) -> Cluster {
        Cluster::new(Pool::with_uniform_hosts(PoolId(0), hosts, spec))
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Mutable access to the underlying pool.
    pub fn pool_mut(&mut self) -> &mut Pool {
        &mut self.pool
    }

    /// A live VM record by id.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(&id)
    }

    /// A mutable live VM record by id.
    pub fn vm_mut(&mut self, id: VmId) -> Option<&mut Vm> {
        self.vms.get_mut(&id)
    }

    /// Iterator over the live VM records in id order.
    pub fn vms(&self) -> impl Iterator<Item = &Vm> + '_ {
        self.vms.values()
    }

    /// Number of live VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// A host by id.
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.pool.host(id)
    }

    /// A mutable host by id.
    pub fn host_mut(&mut self, id: HostId) -> Option<&mut Host> {
        self.pool.host_mut(id)
    }

    /// Iterator over hosts in id order.
    pub fn hosts(&self) -> impl Iterator<Item = &Host> + '_ {
        self.pool.hosts()
    }

    /// Place a VM record on a host, registering it in the VM index.
    ///
    /// # Errors
    ///
    /// Propagates host capacity and duplicate errors.
    pub fn place(&mut self, mut vm: Vm, host: HostId) -> Result<(), CoreError> {
        self.pool.place_vm(host, vm.id(), vm.resources())?;
        vm.assign_host(host);
        self.vms.insert(vm.id(), vm);
        Ok(())
    }

    /// Remove a VM entirely (it exited). Returns the record and the host it
    /// was on.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VmNotFound`] if the VM is not live.
    pub fn remove(&mut self, vm: VmId) -> Result<(Vm, HostId), CoreError> {
        let (host, _) = self.pool.remove_vm(vm)?;
        let mut record = self
            .vms
            .remove(&vm)
            .ok_or(CoreError::VmNotFound { vm })?;
        record.clear_host();
        Ok((record, host))
    }

    /// Move a VM from its current host to `target` (a live migration from
    /// the bookkeeping perspective — both reservations are never held
    /// simultaneously here; the simulator models the 20-minute dual-busy
    /// window separately).
    ///
    /// # Errors
    ///
    /// Fails if the VM is not live or the target host cannot fit it; in the
    /// failure case the VM stays on its original host.
    pub fn migrate(&mut self, vm: VmId, target: HostId) -> Result<HostId, CoreError> {
        let record = self.vms.get(&vm).ok_or(CoreError::VmNotFound { vm })?;
        let request = record.resources();
        let source = record.host().ok_or(CoreError::VmNotFound { vm })?;
        // Check the target can fit before removing from the source.
        {
            let target_host = self
                .pool
                .host(target)
                .ok_or(CoreError::HostNotFound { host: target })?;
            if !target_host.can_fit(request) {
                return Err(CoreError::InsufficientCapacity { host: target, vm });
            }
        }
        self.pool.remove_vm(vm)?;
        self.pool.place_vm(target, vm, request)?;
        if let Some(record) = self.vms.get_mut(&vm) {
            record.assign_host(target);
        }
        Ok(source)
    }

    /// The feasible hosts for a request: available hosts with enough free
    /// resources, in deterministic id order.
    pub fn feasible_hosts(&self, request: Resources) -> impl Iterator<Item = &Host> + '_ {
        self.pool.hosts().filter(move |h| h.can_fit(request))
    }

    /// The repredicted exit time of a host: `now + max` over its VMs of the
    /// predicted remaining lifetime. Empty hosts exit "now".
    pub fn host_exit_time(
        &self,
        host: &Host,
        predictor: &dyn LifetimePredictor,
        now: SimTime,
    ) -> SimTime {
        host.vm_ids()
            .filter_map(|id| self.vm(id))
            .map(|vm| now + predictor.predict_remaining(vm, now))
            .max()
            .unwrap_or(now)
    }

    /// The host exit time based on **initial** (scheduling-time) predictions
    /// only — the one-shot view used by LA (Barbalho et al.).
    pub fn host_exit_time_initial(&self, host: &Host, now: SimTime) -> SimTime {
        host.vm_ids()
            .filter_map(|id| self.vm(id))
            .map(|vm| {
                let lifetime = vm.initial_prediction().unwrap_or_default();
                vm.created_at() + lifetime
            })
            .max()
            .unwrap_or(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::time::Duration;
    use lava_core::vm::VmSpec;
    use lava_model::predictor::OraclePredictor;

    fn cluster() -> Cluster {
        Cluster::with_uniform_hosts(4, HostSpec::new(Resources::cores_gib(32, 128)))
    }

    fn vm(id: u64, hours: u64) -> Vm {
        Vm::new(
            VmId(id),
            VmSpec::builder(Resources::cores_gib(4, 16)).build(),
            SimTime::ZERO,
            Duration::from_hours(hours),
        )
    }

    #[test]
    fn place_remove_roundtrip() {
        let mut c = cluster();
        c.place(vm(1, 5), HostId(0)).unwrap();
        assert_eq!(c.vm_count(), 1);
        assert_eq!(c.vm(VmId(1)).unwrap().host(), Some(HostId(0)));
        let (record, host) = c.remove(VmId(1)).unwrap();
        assert_eq!(host, HostId(0));
        assert_eq!(record.host(), None);
        assert_eq!(c.vm_count(), 0);
        assert!(c.host(HostId(0)).unwrap().is_empty());
    }

    #[test]
    fn migrate_moves_reservation() {
        let mut c = cluster();
        c.place(vm(1, 5), HostId(0)).unwrap();
        let source = c.migrate(VmId(1), HostId(2)).unwrap();
        assert_eq!(source, HostId(0));
        assert!(c.host(HostId(0)).unwrap().is_empty());
        assert!(c.host(HostId(2)).unwrap().contains(VmId(1)));
        assert_eq!(c.vm(VmId(1)).unwrap().host(), Some(HostId(2)));
    }

    #[test]
    fn migrate_to_full_host_fails_and_keeps_vm() {
        let mut c = cluster();
        c.place(vm(1, 5), HostId(0)).unwrap();
        // Fill host 1 completely.
        let big = Vm::new(
            VmId(2),
            VmSpec::builder(Resources::cores_gib(32, 128)).build(),
            SimTime::ZERO,
            Duration::from_hours(1),
        );
        c.place(big, HostId(1)).unwrap();
        let err = c.migrate(VmId(1), HostId(1)).unwrap_err();
        assert!(matches!(err, CoreError::InsufficientCapacity { .. }));
        assert!(c.host(HostId(0)).unwrap().contains(VmId(1)));
    }

    #[test]
    fn feasible_hosts_respects_capacity_and_availability() {
        let mut c = cluster();
        c.host_mut(HostId(3)).unwrap().set_unavailable(true);
        let feasible: Vec<HostId> = c
            .feasible_hosts(Resources::cores_gib(4, 16))
            .map(|h| h.id())
            .collect();
        assert_eq!(feasible, vec![HostId(0), HostId(1), HostId(2)]);
    }

    #[test]
    fn host_exit_time_uses_repredictions() {
        let mut c = cluster();
        c.place(vm(1, 2), HostId(0)).unwrap();
        c.place(vm(2, 10), HostId(0)).unwrap();
        let oracle = OraclePredictor::new();
        let now = SimTime::ZERO + Duration::from_hours(1);
        let exit = c.host_exit_time(c.host(HostId(0)).unwrap(), &oracle, now);
        assert_eq!(exit, SimTime::ZERO + Duration::from_hours(10));
        // Empty host exits immediately.
        let empty_exit = c.host_exit_time(c.host(HostId(1)).unwrap(), &oracle, now);
        assert_eq!(empty_exit, now);
    }

    #[test]
    fn host_exit_time_initial_uses_one_shot_predictions() {
        let mut c = cluster();
        let mut v = vm(1, 10);
        v.set_initial_prediction(Duration::from_hours(2)); // wrong prediction
        c.place(v, HostId(0)).unwrap();
        let now = SimTime::ZERO + Duration::from_hours(5);
        let exit = c.host_exit_time_initial(c.host(HostId(0)).unwrap(), now);
        // LA still believes the host frees up at t=2h even though the VM is
        // alive at t=5h.
        assert_eq!(exit, SimTime::ZERO + Duration::from_hours(2));
    }
}
