//! Cluster state: a pool of hosts plus the registry of live VM records.
//!
//! The scheduler algorithms need both views: the hosts (occupancy, LAVA
//! state) and the VM records (uptime, initial predictions) so that they can
//! repredict the remaining lifetime of every VM on a candidate host.
//!
//! # The host exit-time cache
//!
//! NILAS scores a candidate host by its expected *exit time* — the max
//! predicted remaining lifetime over its VMs. Recomputing that for every
//! host on every placement is the dominant cost at scale (Appendix G.3
//! introduces a per-host score cache for exactly this reason). The cache
//! lives here, on the cluster rather than inside one policy, so that every
//! lifetime-aware policy (and the embedded NILAS tie-breaker inside LAVA)
//! shares one view with **event-driven invalidation**:
//!
//! * placing a VM marks the host entry pending; the policy's placement
//!   hook then *raises* the cached max with the new VM's predicted exit
//!   instead of recomputing the whole host (incremental max maintenance);
//! * removing or migrating a VM invalidates the entry (the removed VM may
//!   have been the max);
//! * entries expire when their refresh interval lapses or the cached exit
//!   time itself passes (`exit < now` means the prediction was wrong);
//! * clean entries are kept in an exit-time-ordered index so a scoring
//!   pass can walk hosts from latest-exiting to earliest and stop at the
//!   first temporal-cost bucket boundary it cannot improve on.

use crate::policy::CacheCounters;
use lava_core::arena::VmArena;
use lava_core::error::CoreError;
use lava_core::host::{Host, HostId, HostSpec};
use lava_core::pool::{HostMut, Pool, PoolId};
use lava_core::resources::Resources;
use lava_core::time::{Duration, SimTime};
use lava_core::vm::{Vm, VmId};
use lava_model::predictor::LifetimePredictor;
use parking_lot::{Mutex, MutexGuard};
use std::collections::{BTreeMap, BTreeSet};

/// One cached host exit time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExitEntry {
    /// The cached exit time (max predicted VM exit on the host).
    pub(crate) exit: SimTime,
    /// When the entry was (re)computed.
    computed_at: SimTime,
    /// The entry is valid while `now <= expires_at`.
    expires_at: SimTime,
    /// Clean entries appear in `by_exit` / `by_expiry`.
    clean: bool,
    /// Placements since the entry was last clean. Exactly one pending
    /// placement can be healed by an exit-time hint; anything else needs a
    /// recompute.
    pending_places: u8,
    /// A VM left the host (or something else unknowable happened): the
    /// cached max may be stale in either direction, recompute required.
    hard_dirty: bool,
}

/// The shared host exit-time cache (Appendix G.3, promoted to the cluster).
#[derive(Debug, Clone, Default)]
pub(crate) struct ExitCache {
    entries: BTreeMap<HostId, ExitEntry>,
    /// Clean entries ordered by exit time (ascending; scans iterate `.rev()`).
    pub(crate) by_exit: BTreeSet<(SimTime, HostId)>,
    /// Clean entries ordered by expiry time, for O(#expired) staleness sweeps.
    by_expiry: BTreeSet<(SimTime, HostId)>,
    /// Hosts needing recompute (or first-time computation).
    dirty: BTreeSet<HostId>,
    /// The pool mutation epoch this cache last synchronized with. A
    /// mismatch at refresh time means occupancy changed behind the
    /// cluster's event feed (via `pool_mut`), and the cache flushes.
    synced_epoch: u64,
}

impl ExitCache {
    /// Drop a clean entry out of the ordered indexes (before mutating it).
    fn detach(&mut self, id: HostId) {
        if let Some(e) = self.entries.get_mut(&id) {
            if e.clean {
                self.by_exit.remove(&(e.exit, id));
                self.by_expiry.remove(&(e.expires_at, id));
                e.clean = false;
            }
        }
    }

    /// Install a freshly computed entry.
    fn install(&mut self, id: HostId, exit: SimTime, now: SimTime, refresh: Duration) {
        self.detach(id);
        let expires_at = (now + refresh).min(exit).max(now);
        self.entries.insert(
            id,
            ExitEntry {
                exit,
                computed_at: now,
                expires_at,
                clean: true,
                pending_places: 0,
                hard_dirty: false,
            },
        );
        self.by_exit.insert((exit, id));
        self.by_expiry.insert((expires_at, id));
        self.dirty.remove(&id);
    }

    /// Remove all trace of a host (it became empty or disappeared).
    fn forget(&mut self, id: HostId) {
        self.detach(id);
        self.entries.remove(&id);
        self.dirty.remove(&id);
    }

    /// A VM was placed on the host: the entry can be healed by a hint.
    pub(crate) fn mark_placement(&mut self, id: HostId) {
        self.detach(id);
        if let Some(e) = self.entries.get_mut(&id) {
            e.pending_places = e.pending_places.saturating_add(1);
        }
        self.dirty.insert(id);
    }

    /// Something invalidating happened on the host: recompute required.
    pub(crate) fn mark_hard(&mut self, id: HostId) {
        self.detach(id);
        if let Some(e) = self.entries.get_mut(&id) {
            e.hard_dirty = true;
        }
        self.dirty.insert(id);
    }

    /// The cached exit time of a host, if its entry is valid at `now`.
    pub(crate) fn valid_exit(&self, id: HostId, now: SimTime) -> Option<SimTime> {
        self.entries
            .get(&id)
            .filter(|e| e.clean && now <= e.expires_at)
            .map(|e| e.exit)
    }

    /// The cached exit of a host after a refresh pass (empty hosts exit
    /// "now", mirroring `host_exit_time`'s `unwrap_or(now)`).
    pub(crate) fn exit_or_now(&self, id: HostId, now: SimTime) -> SimTime {
        self.entries.get(&id).map(|e| e.exit).unwrap_or(now)
    }

    /// True if the host's entry predates `now` — i.e. a lookup at `now`
    /// is genuinely answered from cache rather than from a recompute made
    /// in the same pass. Used for honest hit accounting in indexed scans.
    pub(crate) fn cached_before(&self, id: HostId, now: SimTime) -> bool {
        self.entries.get(&id).is_some_and(|e| e.computed_at < now)
    }
}

/// A pool of hosts together with the live VM records.
///
/// VM records live in a generational slab arena ([`VmArena`]): lookups
/// are one flat-table read plus one slot read, iteration is id-ordered,
/// and steady-state create/exit churn re-uses warm slots with zero heap
/// allocations (see the arena's placement-order live list, which also
/// backs [`Cluster::sampled_vms`]).
#[derive(Debug)]
pub struct Cluster {
    pool: Pool,
    vms: VmArena,
    exit_cache: Mutex<ExitCache>,
}

impl Clone for Cluster {
    fn clone(&self) -> Cluster {
        Cluster {
            pool: self.pool.clone(),
            vms: self.vms.clone(),
            exit_cache: Mutex::new(self.exit_cache.lock().clone()),
        }
    }
}

impl Cluster {
    /// Create a cluster around an existing pool.
    pub fn new(pool: Pool) -> Cluster {
        Cluster {
            pool,
            vms: VmArena::new(),
            exit_cache: Mutex::new(ExitCache::default()),
        }
    }

    /// Create a cluster of `hosts` identical hosts.
    pub fn with_uniform_hosts(hosts: usize, spec: HostSpec) -> Cluster {
        Cluster::new(Pool::with_uniform_hosts(PoolId(0), hosts, spec))
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Mutable access to the underlying pool.
    ///
    /// Mutating occupancy through the pool directly bypasses the exit-time
    /// cache's event feed; the cache detects this through the pool's
    /// mutation epoch and flushes itself on the next refresh pass.
    pub fn pool_mut(&mut self) -> &mut Pool {
        &mut self.pool
    }

    /// A live VM record by id.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(id)
    }

    /// A mutable live VM record by id.
    pub fn vm_mut(&mut self, id: VmId) -> Option<&mut Vm> {
        self.vms.get_mut(id)
    }

    /// Iterator over the live VM records in id order.
    pub fn vms(&self) -> impl Iterator<Item = &Vm> + '_ {
        self.vms.iter()
    }

    /// Number of live VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Pre-size the VM arena for a workload whose ids stay below
    /// `max_id` with at most `live` concurrent VMs: steady-state
    /// create/exit churn within those bounds then never grows the arena
    /// (the zero-allocation drive contract the counting-allocator tests
    /// pin down).
    pub fn reserve_vm_capacity(&mut self, max_id: u64, live: usize) {
        self.vms.reserve(max_id, live);
        self.pool.reserve_vm_index(max_id);
    }

    /// A bounded, deterministic sample of at most `cap` live VMs: every
    /// ⌈n/cap⌉-th VM in placement order (exits swap-remove, perturbing but
    /// never randomising the order). O(cap) regardless of the live-VM
    /// count — this is what keeps fleet `CellSummary` extraction bounded.
    pub fn sampled_vms(&self, cap: usize) -> impl Iterator<Item = &Vm> + '_ {
        self.vms.sampled(cap)
    }

    /// A host by id.
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.pool.host(id)
    }

    /// A mutable host by id (guarded: the pool's candidate indexes are
    /// updated when the guard drops).
    pub fn host_mut(&mut self, id: HostId) -> Option<HostMut<'_>> {
        self.pool.host_mut(id)
    }

    /// Iterator over hosts in id order.
    pub fn hosts(&self) -> impl Iterator<Item = &Host> + '_ {
        self.pool.hosts()
    }

    /// Place a VM record on a host, registering it in the VM index.
    ///
    /// # Errors
    ///
    /// Propagates host capacity and duplicate errors.
    pub fn place(&mut self, mut vm: Vm, host: HostId) -> Result<(), CoreError> {
        self.pool.place_vm(host, vm.id(), vm.resources())?;
        vm.assign_host(host);
        self.vms.insert(vm);
        let cache = self.exit_cache.get_mut();
        cache.mark_placement(host);
        // Advance by exactly the one pool mutation made above: setting to
        // the pool's epoch outright would absorb (and mask) any bypass
        // mutations made through pool_mut since the last refresh.
        cache.synced_epoch += 1;
        Ok(())
    }

    /// Remove a VM entirely (it exited). Returns the record and the host it
    /// was on.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VmNotFound`] if the VM is not live.
    pub fn remove(&mut self, vm: VmId) -> Result<(Vm, HostId), CoreError> {
        let (host, _) = self.pool.remove_vm(vm)?;
        let mut record = self.vms.remove(vm).ok_or(CoreError::VmNotFound { vm })?;
        record.clear_host();
        let cache = self.exit_cache.get_mut();
        if self.pool.host(host).is_none_or(|h| h.is_empty()) {
            cache.forget(host);
        } else {
            cache.mark_hard(host);
        }
        cache.synced_epoch += 1;
        Ok((record, host))
    }

    /// Move a VM from its current host to `target` (a live migration from
    /// the bookkeeping perspective — both reservations are never held
    /// simultaneously here; the simulator models the 20-minute dual-busy
    /// window separately).
    ///
    /// # Errors
    ///
    /// Fails if the VM is not live or the target host cannot fit it; in the
    /// failure case the VM stays on its original host.
    pub fn migrate(&mut self, vm: VmId, target: HostId) -> Result<HostId, CoreError> {
        let record = self.vms.get(vm).ok_or(CoreError::VmNotFound { vm })?;
        let request = record.resources();
        let source = record.host().ok_or(CoreError::VmNotFound { vm })?;
        // Check the target can fit before removing from the source.
        {
            let target_host = self
                .pool
                .host(target)
                .ok_or(CoreError::HostNotFound { host: target })?;
            if !target_host.can_fit(request) {
                return Err(CoreError::InsufficientCapacity { host: target, vm });
            }
        }
        self.pool.remove_vm(vm)?;
        self.pool.place_vm(target, vm, request)?;
        if let Some(record) = self.vms.get_mut(vm) {
            record.assign_host(target);
        }
        let cache = self.exit_cache.get_mut();
        if self.pool.host(source).is_none_or(|h| h.is_empty()) {
            cache.forget(source);
        } else {
            cache.mark_hard(source);
        }
        cache.mark_placement(target);
        // remove_vm + place_vm above: two pool mutations.
        cache.synced_epoch += 2;
        Ok(source)
    }

    /// The feasible hosts for a request: available hosts with enough free
    /// resources, in deterministic id order.
    pub fn feasible_hosts(&self, request: Resources) -> impl Iterator<Item = &Host> + '_ {
        self.pool.hosts().filter(move |h| h.can_fit(request))
    }

    /// The repredicted exit time of a host: `now + max` over its VMs of the
    /// predicted remaining lifetime. Empty hosts exit "now". Uncached.
    ///
    /// All of the host's VMs are repredicted through **one**
    /// [`LifetimePredictor::predict_remaining_batch`] call rather than N
    /// virtual dispatches: the compiled GBDT amortises its setup (and runs
    /// its cache-friendly batch kernel) across the whole host, while
    /// scalar predictors fall back to the equivalent per-VM loop. Results
    /// are bit-identical either way.
    pub fn host_exit_time(
        &self,
        host: &Host,
        predictor: &dyn LifetimePredictor,
        now: SimTime,
    ) -> SimTime {
        let mut latest: Option<SimTime> = None;
        let mut vms = host.vm_ids().filter_map(|id| self.vm(id));
        predictor.predict_remaining_batch(&mut vms, now, &mut |_, remaining| {
            let exit = now + remaining;
            latest = Some(latest.map_or(exit, |m| m.max(exit)));
        });
        latest.unwrap_or(now)
    }

    /// The host exit time based on **initial** (scheduling-time) predictions
    /// only — the one-shot view used by LA (Barbalho et al.).
    pub fn host_exit_time_initial(&self, host: &Host, now: SimTime) -> SimTime {
        host.vm_ids()
            .filter_map(|id| self.vm(id))
            .map(|vm| {
                let lifetime = vm.initial_prediction().unwrap_or_default();
                vm.created_at() + lifetime
            })
            .max()
            .unwrap_or(now)
    }

    // --- exit-time cache operations --------------------------------------

    /// Recompute one host's exit time for the cache. With repredictions
    /// enabled this is the batched entry point of the scoring hot path:
    /// every VM on the host goes through a single
    /// `predict_remaining_batch` call (see [`Cluster::host_exit_time`]).
    fn compute_exit(
        &self,
        host: &Host,
        predictor: &dyn LifetimePredictor,
        now: SimTime,
        repredict: bool,
    ) -> SimTime {
        if repredict {
            self.host_exit_time(host, predictor, now)
        } else {
            self.host_exit_time_initial(host, now)
        }
    }

    /// Lock the exit cache for a read-mostly scan. Callers should run
    /// [`Cluster::refresh_exit_entries`] first so every occupied host has a
    /// valid entry.
    pub(crate) fn exit_cache_lock(&self) -> MutexGuard<'_, ExitCache> {
        self.exit_cache.lock()
    }

    /// The (possibly cached) exit time of one host, with seed-compatible
    /// hit/miss semantics: a hit requires a clean entry whose refresh
    /// interval has not lapsed and whose exit time has not passed.
    pub(crate) fn cached_exit_time(
        &self,
        host: &Host,
        predictor: &dyn LifetimePredictor,
        now: SimTime,
        refresh: Option<Duration>,
        repredict: bool,
        counters: &mut CacheCounters,
    ) -> SimTime {
        let Some(refresh) = refresh else {
            // Caching disabled: every lookup recomputes.
            counters.misses += 1;
            if repredict {
                counters.predictions += host.vm_count() as u64;
            }
            return self.compute_exit(host, predictor, now, repredict);
        };
        let mut cache = self.exit_cache.lock();
        if let Some(exit) = cache.valid_exit(host.id(), now) {
            counters.hits += 1;
            return exit;
        }
        counters.misses += 1;
        if repredict {
            counters.predictions += host.vm_count() as u64;
        }
        let exit = self.compute_exit(host, predictor, now, repredict);
        if host.is_empty() {
            cache.forget(host.id());
        } else {
            cache.install(host.id(), exit, now, refresh);
        }
        exit
    }

    /// Bring the cache up to date at `now` for a placement of `request`:
    /// recompute dirty entries, restore coverage, and sweep entries whose
    /// refresh interval or exit time has passed. Hosts that cannot fit
    /// `request` are *not* recomputed — the scan skips them anyway — and
    /// instead stay parked in the dirty set until a request they can fit
    /// comes along. This mirrors the lazy semantics of the per-host lookup
    /// path: only hosts that would actually be scored cost predictions.
    ///
    /// After this returns, every occupied host that can fit `request` has
    /// a valid entry in `by_exit`. No-op when caching is disabled.
    pub(crate) fn refresh_exit_entries(
        &self,
        predictor: &dyn LifetimePredictor,
        now: SimTime,
        refresh: Option<Duration>,
        repredict: bool,
        request: Resources,
        counters: &mut CacheCounters,
    ) {
        let Some(refresh) = refresh else { return };
        let mut cache = self.exit_cache.lock();
        let recompute = |cache: &mut ExitCache, counters: &mut CacheCounters, h: &Host| {
            counters.misses += 1;
            if repredict {
                counters.predictions += h.vm_count() as u64;
            }
            let exit = self.compute_exit(h, predictor, now, repredict);
            cache.install(h.id(), exit, now, refresh);
        };
        // 1. Bypass detection: if the pool's occupancy changed without the
        //    cluster seeing it (mutations through `pool_mut`), no entry can
        //    be trusted — flush everything and rebuild lazily. The epoch
        //    comparison is O(1) and never fires for cluster-routed events.
        if cache.synced_epoch != self.pool.mutation_epoch() {
            let ids: Vec<HostId> = cache.entries.keys().copied().collect();
            for id in ids {
                cache.mark_hard(id);
            }
            for h in self.pool.occupied_hosts() {
                if !cache.entries.contains_key(&h.id()) {
                    cache.dirty.insert(h.id());
                }
            }
            cache.synced_epoch = self.pool.mutation_epoch();
        }
        // 2. Dirty hosts (placements without hints, removals, migrations,
        //    hosts parked as infeasible by earlier passes). Feasible ones
        //    are recomputed and leave the set; infeasible ones stay.
        let mut cursor = HostId(0);
        while let Some(&id) = cache.dirty.range(cursor..).next() {
            cursor = HostId(id.0 + 1);
            match self.pool.host(id) {
                Some(h) if h.is_empty() => cache.forget(id),
                Some(h) if h.can_fit(request) => recompute(&mut cache, counters, h),
                Some(_) => {}
                None => cache.forget(id),
            }
        }
        // 3. Expired entries, in expiry order: O(#expired), not O(hosts).
        //    Infeasible expired hosts are parked in the dirty set instead
        //    of being recomputed.
        while let Some(&(expires_at, id)) = cache.by_expiry.iter().next() {
            if expires_at >= now {
                break;
            }
            match self.pool.host(id) {
                Some(h) if h.is_empty() => cache.forget(id),
                Some(h) if h.can_fit(request) => recompute(&mut cache, counters, h),
                Some(_) => {
                    cache.detach(id);
                    cache.dirty.insert(id);
                }
                None => cache.forget(id),
            }
        }
    }

    /// Incremental max-exit maintenance: after a placement, raise the
    /// host's cached exit time with the placed VM's predicted exit instead
    /// of repredicting every VM on the host. Only heals an entry whose sole
    /// pending event is that single placement; in every other situation the
    /// entry stays dirty and the next refresh pass recomputes it.
    pub(crate) fn apply_exit_hint(
        &mut self,
        host: HostId,
        vm_exit: SimTime,
        now: SimTime,
        refresh: Option<Duration>,
    ) {
        let Some(refresh) = refresh else { return };
        let Some(h) = self.pool.host(host) else {
            return;
        };
        if h.is_empty() {
            return;
        }
        let single_vm = h.vm_count() == 1;
        let cache = self.exit_cache.get_mut();
        match cache.entries.get(&host) {
            Some(e) if !e.hard_dirty && e.pending_places == 1 && !e.clean => {
                let exit = e.exit.max(vm_exit);
                let computed_at = e.computed_at;
                let expires_at = (computed_at + refresh).min(exit).max(computed_at);
                cache.entries.insert(
                    host,
                    ExitEntry {
                        exit,
                        computed_at,
                        expires_at,
                        clean: true,
                        pending_places: 0,
                        hard_dirty: false,
                    },
                );
                cache.by_exit.insert((exit, host));
                cache.by_expiry.insert((expires_at, host));
                cache.dirty.remove(&host);
            }
            None if single_vm => {
                // First VM on the host: its exit *is* the host exit.
                cache.install(host, vm_exit, now, refresh);
            }
            _ => {}
        }
    }

    /// Invalidate the cached exit time of one host (recompute on next use).
    pub(crate) fn invalidate_exit(&mut self, host: HostId) {
        self.exit_cache.get_mut().mark_hard(host);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::time::Duration;
    use lava_core::vm::VmSpec;
    use lava_model::predictor::OraclePredictor;

    fn cluster() -> Cluster {
        Cluster::with_uniform_hosts(4, HostSpec::new(Resources::cores_gib(32, 128)))
    }

    fn vm(id: u64, hours: u64) -> Vm {
        Vm::new(
            VmId(id),
            VmSpec::builder(Resources::cores_gib(4, 16)).build(),
            SimTime::ZERO,
            Duration::from_hours(hours),
        )
    }

    #[test]
    fn place_remove_roundtrip() {
        let mut c = cluster();
        c.place(vm(1, 5), HostId(0)).unwrap();
        assert_eq!(c.vm_count(), 1);
        assert_eq!(c.vm(VmId(1)).unwrap().host(), Some(HostId(0)));
        let (record, host) = c.remove(VmId(1)).unwrap();
        assert_eq!(host, HostId(0));
        assert_eq!(record.host(), None);
        assert_eq!(c.vm_count(), 0);
        assert!(c.host(HostId(0)).unwrap().is_empty());
    }

    #[test]
    fn migrate_moves_reservation() {
        let mut c = cluster();
        c.place(vm(1, 5), HostId(0)).unwrap();
        let source = c.migrate(VmId(1), HostId(2)).unwrap();
        assert_eq!(source, HostId(0));
        assert!(c.host(HostId(0)).unwrap().is_empty());
        assert!(c.host(HostId(2)).unwrap().contains(VmId(1)));
        assert_eq!(c.vm(VmId(1)).unwrap().host(), Some(HostId(2)));
    }

    #[test]
    fn migrate_to_full_host_fails_and_keeps_vm() {
        let mut c = cluster();
        c.place(vm(1, 5), HostId(0)).unwrap();
        // Fill host 1 completely.
        let big = Vm::new(
            VmId(2),
            VmSpec::builder(Resources::cores_gib(32, 128)).build(),
            SimTime::ZERO,
            Duration::from_hours(1),
        );
        c.place(big, HostId(1)).unwrap();
        let err = c.migrate(VmId(1), HostId(1)).unwrap_err();
        assert!(matches!(err, CoreError::InsufficientCapacity { .. }));
        assert!(c.host(HostId(0)).unwrap().contains(VmId(1)));
    }

    #[test]
    fn feasible_hosts_respects_capacity_and_availability() {
        let mut c = cluster();
        c.host_mut(HostId(3)).unwrap().set_unavailable(true);
        let feasible: Vec<HostId> = c
            .feasible_hosts(Resources::cores_gib(4, 16))
            .map(|h| h.id())
            .collect();
        assert_eq!(feasible, vec![HostId(0), HostId(1), HostId(2)]);
    }

    #[test]
    fn host_exit_time_uses_repredictions() {
        let mut c = cluster();
        c.place(vm(1, 2), HostId(0)).unwrap();
        c.place(vm(2, 10), HostId(0)).unwrap();
        let oracle = OraclePredictor::new();
        let now = SimTime::ZERO + Duration::from_hours(1);
        let exit = c.host_exit_time(c.host(HostId(0)).unwrap(), &oracle, now);
        assert_eq!(exit, SimTime::ZERO + Duration::from_hours(10));
        // Empty host exits immediately.
        let empty_exit = c.host_exit_time(c.host(HostId(1)).unwrap(), &oracle, now);
        assert_eq!(empty_exit, now);
    }

    #[test]
    fn host_exit_time_batched_matches_reference_engine() {
        // The compiled predictor answers `host_exit_time` through its
        // batched override; the reference engine goes VM by VM. Same VMs,
        // same clock — the exit times must be identical.
        use lava_model::dataset::DatasetBuilder;
        use lava_model::gbdt::GbdtConfig;
        use lava_model::predictor::GbdtPredictor;

        let mut builder = DatasetBuilder::new();
        for i in 0..200u64 {
            let spec = VmSpec::builder(Resources::cores_gib(1 + (i % 4), 8))
                .category((i % 2) as u32)
                .build();
            builder.push(spec, Duration::from_hours(1 + (i % 72)));
        }
        let reference = GbdtPredictor::train(GbdtConfig::fast(), &builder.build());
        let compiled = reference.compile();

        let mut c = Cluster::with_uniform_hosts(1, HostSpec::new(Resources::cores_gib(256, 1024)));
        for i in 0..70u64 {
            let spec = VmSpec::builder(Resources::cores_gib(1 + (i % 4), 8))
                .category((i % 2) as u32)
                .build();
            let vm = Vm::new(
                VmId(i),
                spec,
                SimTime::ZERO + Duration::from_mins(i),
                Duration::from_hours(500),
            );
            c.place(vm, HostId(0)).unwrap();
        }
        let now = SimTime::ZERO + Duration::from_hours(9);
        let host = c.host(HostId(0)).unwrap();
        assert_eq!(
            c.host_exit_time(host, &reference, now),
            c.host_exit_time(host, &compiled, now),
        );
    }

    #[test]
    fn host_exit_time_initial_uses_one_shot_predictions() {
        let mut c = cluster();
        let mut v = vm(1, 10);
        v.set_initial_prediction(Duration::from_hours(2)); // wrong prediction
        c.place(v, HostId(0)).unwrap();
        let now = SimTime::ZERO + Duration::from_hours(5);
        let exit = c.host_exit_time_initial(c.host(HostId(0)).unwrap(), now);
        // LA still believes the host frees up at t=2h even though the VM is
        // alive at t=5h.
        assert_eq!(exit, SimTime::ZERO + Duration::from_hours(2));
    }

    #[test]
    fn refresh_builds_exact_exit_order() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap();
        c.place(vm(2, 2), HostId(1)).unwrap();
        c.place(vm(3, 30), HostId(3)).unwrap();
        let oracle = OraclePredictor::new();
        let mut counters = CacheCounters::default();
        c.refresh_exit_entries(
            &oracle,
            SimTime::ZERO,
            Some(Duration::from_mins(1)),
            true,
            Resources::ZERO,
            &mut counters,
        );
        let cache = c.exit_cache_lock();
        let order: Vec<HostId> = cache.by_exit.iter().rev().map(|&(_, id)| id).collect();
        assert_eq!(order, vec![HostId(3), HostId(0), HostId(1)]);
        assert_eq!(counters.misses, 3);
        assert_eq!(counters.predictions, 3);
    }

    #[test]
    fn cache_heals_after_direct_pool_mutation() {
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap();
        let oracle = OraclePredictor::new();
        let mut counters = CacheCounters::default();
        let refresh = Some(Duration::from_hours(1));
        c.refresh_exit_entries(
            &oracle,
            SimTime::ZERO,
            refresh,
            true,
            Resources::ZERO,
            &mut counters,
        );
        // Mutate occupancy behind the cluster's back.
        c.pool_mut()
            .place_vm(HostId(2), VmId(9), Resources::cores_gib(2, 8))
            .unwrap();
        c.refresh_exit_entries(
            &oracle,
            SimTime::ZERO,
            refresh,
            true,
            Resources::ZERO,
            &mut counters,
        );
        let cache = c.exit_cache_lock();
        assert!(cache.valid_exit(HostId(2), SimTime::ZERO).is_some());
    }

    #[test]
    fn bypass_mutation_not_masked_by_later_cluster_ops() {
        // A pool_mut bypass followed by a cluster-routed op before the next
        // refresh: the cluster op must not absorb the bypass's epoch bump.
        let mut c = cluster();
        c.place(vm(1, 10), HostId(0)).unwrap();
        let oracle = OraclePredictor::new();
        let refresh = Some(Duration::from_hours(1));
        let mut counters = CacheCounters::default();
        c.refresh_exit_entries(
            &oracle,
            SimTime::ZERO,
            refresh,
            true,
            Resources::ZERO,
            &mut counters,
        );
        // Swap occupancy behind the cluster's back: empty host 0, occupy
        // host 2 — entry count stays equal, only the epoch can tell.
        c.pool_mut().remove_vm(VmId(1)).unwrap();
        c.pool_mut()
            .place_vm(HostId(2), VmId(9), Resources::cores_gib(2, 8))
            .unwrap();
        // A cluster-routed placement happens before any refresh.
        c.place(vm(3, 4), HostId(1)).unwrap();
        c.refresh_exit_entries(
            &oracle,
            SimTime::ZERO,
            refresh,
            true,
            Resources::ZERO,
            &mut counters,
        );
        let cache = c.exit_cache_lock();
        assert!(
            cache.valid_exit(HostId(0), SimTime::ZERO).is_none(),
            "stale entry for the emptied host must be flushed"
        );
        assert!(
            cache.valid_exit(HostId(2), SimTime::ZERO).is_some(),
            "the bypass-occupied host must be covered"
        );
        assert!(cache.valid_exit(HostId(1), SimTime::ZERO).is_some());
    }

    #[test]
    fn hint_raises_cached_max_without_recompute() {
        let mut c = cluster();
        c.place(vm(1, 5), HostId(0)).unwrap();
        let oracle = OraclePredictor::new();
        let refresh = Some(Duration::from_hours(1));
        let mut counters = CacheCounters::default();
        c.refresh_exit_entries(
            &oracle,
            SimTime::ZERO,
            refresh,
            true,
            Resources::ZERO,
            &mut counters,
        );

        // Place a longer VM and heal the entry with a hint.
        c.place(vm(2, 20), HostId(0)).unwrap();
        c.apply_exit_hint(
            HostId(0),
            SimTime::ZERO + Duration::from_hours(20),
            SimTime::ZERO,
            refresh,
        );
        let misses_before = counters.misses;
        c.refresh_exit_entries(
            &oracle,
            SimTime::ZERO,
            refresh,
            true,
            Resources::ZERO,
            &mut counters,
        );
        assert_eq!(counters.misses, misses_before, "hint avoided a recompute");
        let cache = c.exit_cache_lock();
        assert_eq!(
            cache.valid_exit(HostId(0), SimTime::ZERO),
            Some(SimTime::ZERO + Duration::from_hours(20))
        );
    }

    #[test]
    fn removal_invalidates_cached_exit() {
        let mut c = cluster();
        c.place(vm(1, 5), HostId(0)).unwrap();
        c.place(vm(2, 20), HostId(0)).unwrap();
        let oracle = OraclePredictor::new();
        let refresh = Some(Duration::from_hours(100));
        let mut counters = CacheCounters::default();
        c.refresh_exit_entries(
            &oracle,
            SimTime::ZERO,
            refresh,
            true,
            Resources::ZERO,
            &mut counters,
        );
        // Remove the max VM: the cached exit must not survive.
        c.remove(VmId(2)).unwrap();
        c.refresh_exit_entries(
            &oracle,
            SimTime::ZERO,
            refresh,
            true,
            Resources::ZERO,
            &mut counters,
        );
        let cache = c.exit_cache_lock();
        assert_eq!(
            cache.valid_exit(HostId(0), SimTime::ZERO),
            Some(SimTime::ZERO + Duration::from_hours(5))
        );
    }
}
