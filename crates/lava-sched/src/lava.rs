//! LAVA: Lifetime-Aware VM Allocation (§4.3).
//!
//! Where LA and NILAS place VMs with *similar* lifetimes together, LAVA does
//! the opposite: it fills gaps on hosts that already contain longer-lived
//! VMs with VMs that are at least one lifetime class (≥10×) shorter, so
//! placements never extend the time at which the host frees up — even when
//! predictions are somewhat wrong.
//!
//! Each host carries a lifetime class (LC1–LC4) and one of three states
//! (mirroring LLAMA's page states):
//!
//! * **empty** — no VMs, no class;
//! * **open** — accepts VMs of its own class; transitions to *recycling*
//!   once ≥ 90 % of CPU or memory is occupied;
//! * **recycling** — only accepts VMs of a strictly lower class.
//!
//! Misprediction handling: when all *residual* VMs (those present at the
//! last transition) have exited, the host's class steps **down** one level
//! (over-prediction recovery, Fig. 5b); when a host outlives its deadline
//! (1.1 × its class upper bound), its class steps **up** one level
//! (under-prediction recovery, Fig. 5c).
//!
//! Candidate ordering per Algorithm 3: recycling hosts with a higher class
//! (closest class first), then open hosts of the same class, then any
//! non-empty host, then empty hosts — ties broken by NILAS.
//!
//! The default (indexed) scan walks those preference levels directly
//! through the pool's `(state, class)` buckets and occupancy sets, and
//! returns at the **first level containing a feasible host** — on a large
//! pool a placement usually touches a handful of hosts instead of all of
//! them. A linear reference scan replicating the seed's score-everything
//! enumeration is kept for parity tests and benchmarks.

use crate::cluster::Cluster;
use crate::nilas::{consider, Candidate, NilasConfig, NilasPolicy, NilasStats};
use crate::policy::{CandidateScan, PlacementPolicy};
use crate::scoring::{waste_minimization_score, ScoreVector};
use lava_core::host::{Host, HostId, HostLifetimeState};
use lava_core::lifetime::LifetimeClass;
use lava_core::time::{Duration, SimTime};
use lava_core::vm::{Vm, VmId};
use lava_model::predictor::LifetimePredictor;
use std::sync::Arc;

/// Configuration for [`LavaPolicy`].
#[derive(Debug, Clone)]
pub struct LavaConfig {
    /// Utilisation (CPU or memory) at which an *open* host transitions to
    /// *recycling* (paper: 90 %).
    pub recycling_threshold: f64,
    /// Slack multiplier applied to the class upper bound when setting host
    /// deadlines (paper: 1.1×).
    pub deadline_slack: f64,
    /// Configuration of the embedded NILAS tie-breaker. Its `scan` field
    /// governs LAVA's own candidate enumeration too (`Indexed` requires
    /// the cache; with `cache_refresh: None` the policy falls back to
    /// linear).
    pub nilas: NilasConfig,
}

impl Default for LavaConfig {
    fn default() -> Self {
        LavaConfig {
            recycling_threshold: 0.9,
            deadline_slack: 1.1,
            nilas: NilasConfig::default(),
        }
    }
}

/// The LAVA placement policy.
pub struct LavaPolicy {
    predictor: Arc<dyn LifetimePredictor>,
    config: LavaConfig,
    /// NILAS is used as the tie-breaker within each preference level
    /// (Algorithm 3's final line).
    nilas: NilasPolicy,
    /// Number of deadline-expiry (class-up) corrections applied.
    deadline_corrections: u64,
    /// Number of class-down steps applied after residual VMs exited.
    class_downgrades: u64,
    /// Whether the policy is currently degraded to best-fit because the
    /// measured misprediction error crossed the fallback threshold (the
    /// embedded NILAS tie-breaker mirrors this flag, zeroing its temporal
    /// cost term).
    degraded: bool,
}

impl LavaPolicy {
    /// Create the policy.
    pub fn new(predictor: Arc<dyn LifetimePredictor>, config: LavaConfig) -> LavaPolicy {
        let nilas = NilasPolicy::new(predictor.clone(), config.nilas.clone());
        LavaPolicy {
            predictor,
            config,
            nilas,
            deadline_corrections: 0,
            class_downgrades: 0,
            degraded: false,
        }
    }

    /// Create the policy with default configuration.
    pub fn with_defaults(predictor: Arc<dyn LifetimePredictor>) -> LavaPolicy {
        LavaPolicy::new(predictor, LavaConfig::default())
    }

    /// Prediction/cache counters of the embedded NILAS tie-breaker.
    pub fn nilas_stats(&self) -> NilasStats {
        self.nilas.stats()
    }

    /// Number of deadline-expiry (under-prediction) corrections applied.
    pub fn deadline_corrections(&self) -> u64 {
        self.deadline_corrections
    }

    /// Number of class-down (over-prediction) steps applied.
    pub fn class_downgrades(&self) -> u64 {
        self.class_downgrades
    }

    /// Whether the policy is currently degraded to the best-fit regime.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The lifetime class LAVA assigns to a VM request at `now`.
    pub fn vm_class(&self, vm: &Vm, now: SimTime) -> LifetimeClass {
        LifetimeClass::from_lifetime(self.predictor.predict_remaining(vm, now))
    }

    fn deadline_for(&self, class: LifetimeClass, now: SimTime) -> SimTime {
        let horizon = class.upper_bound().as_secs() as f64 * self.config.deadline_slack;
        now + Duration::from_secs_f64(horizon)
    }

    /// The Algorithm 3 preference level of a host for a VM of class
    /// `vm_class`: `(rank, sub_rank)`, lower is better.
    ///
    /// While degraded, the class-based levels are suppressed: every
    /// occupied host ranks 2 and every empty host ranks 3 (the only
    /// lifetime-agnostic distinction), so with the temporal cost also
    /// zeroed the score collapses to occupied-first waste minimisation.
    fn preference(&self, host: &Host, vm_class: LifetimeClass) -> (f64, f64) {
        if self.degraded {
            return if !host.is_empty() {
                (2.0, 0.0)
            } else {
                (3.0, 0.0)
            };
        }
        match (host.lifetime_state(), host.lifetime_class()) {
            (HostLifetimeState::Recycling, Some(host_class)) if host_class > vm_class => {
                // Closest class is most preferred.
                (0.0, host_class.distance(vm_class) as f64)
            }
            (HostLifetimeState::Open, Some(host_class)) if host_class == vm_class => (1.0, 0.0),
            _ if !host.is_empty() => (2.0, 0.0),
            _ => (3.0, 0.0),
        }
    }

    /// Reference implementation: score every feasible host with the full
    /// four-dimensional lexicographic score (the seed's enumeration).
    pub fn choose_host_linear(
        &mut self,
        cluster: &Cluster,
        vm: &Vm,
        now: SimTime,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        let vm_remaining = self.predictor.predict_remaining(vm, now);
        let vm_class = LifetimeClass::from_lifetime(vm_remaining);
        let vm_exit = now + vm_remaining;
        let request = vm.resources();

        let mut best: Option<(ScoreVector, HostId)> = None;
        for host in cluster.hosts() {
            if Some(host.id()) == exclude || !host.can_fit(request) {
                continue;
            }
            let (rank, sub_rank) = self.preference(host, vm_class);
            let temporal_cost = self.nilas.temporal_cost(cluster, host, vm_exit, now) as f64;
            let score = ScoreVector::new([
                rank,
                sub_rank,
                temporal_cost,
                waste_minimization_score(host, request),
            ]);
            match &best {
                Some((best_score, _)) if !score.is_better_than(best_score) => {}
                _ => best = Some((score, host.id())),
            }
        }
        best.map(|(_, id)| id)
    }

    /// Indexed scan: walk Algorithm 3's preference levels through the
    /// pool's candidate indexes and return at the first level that
    /// contains a feasible host.
    fn choose_host_indexed(
        &mut self,
        cluster: &Cluster,
        vm: &Vm,
        now: SimTime,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        let vm_remaining = self.predictor.predict_remaining(vm, now);
        let vm_class = LifetimeClass::from_lifetime(vm_remaining);
        let vm_exit = now + vm_remaining;
        let request = vm.resources();

        self.nilas.refresh_cache(cluster, now, request);
        let cache = cluster.exit_cache_lock();
        let buckets = self.nilas.buckets();
        let degraded = self.degraded;
        let mut hits = 0u64;

        // Score the candidates of one preference level; within a level the
        // ordering is (temporal cost, waste, id), exactly the tail of the
        // linear scan's lexicographic score.
        let mut best_of = |hosts: &mut dyn Iterator<Item = &Host>| -> Option<HostId> {
            let mut best: Option<Candidate> = None;
            for host in hosts {
                if Some(host.id()) == exclude || !host.can_fit(request) {
                    continue;
                }
                let host_exit = if host.is_empty() {
                    now
                } else {
                    cache.exit_or_now(host.id(), now)
                };
                if cache.cached_before(host.id(), now) {
                    hits += 1;
                }
                consider(
                    &mut best,
                    Candidate {
                        cost: if degraded {
                            0
                        } else {
                            buckets.cost(vm_exit.saturating_since(host_exit))
                        },
                        waste: waste_minimization_score(host, request),
                        id: host.id(),
                    },
                );
            }
            best.map(|b| b.id)
        };

        let pool = cluster.pool();
        // Separate counter: `best_of` above holds the borrow on `hits`.
        let mut level2_hits = 0u64;
        let winner = 'levels: {
            // While degraded the class-based levels 0/1 are suppressed
            // (matching `preference`): fall straight through to the
            // lifetime-agnostic occupied/empty levels.
            if !degraded {
                // Level 0: recycling hosts of a strictly higher class,
                // closest class first. Each distance is its own sub-rank,
                // so the first non-empty feasible distance decides.
                for idx in (vm_class.index() + 1)..=4 {
                    let class = LifetimeClass::from_index_clamped(idx as i32);
                    if let Some(id) = best_of(
                        &mut pool.hosts_in_state_class(HostLifetimeState::Recycling, Some(class)),
                    ) {
                        break 'levels Some(id);
                    }
                }
                // Level 1: open hosts of the same class.
                if let Some(id) =
                    best_of(&mut pool.hosts_in_state_class(HostLifetimeState::Open, Some(vm_class)))
                {
                    break 'levels Some(id);
                }
            }
            // Level 2: any occupied host. Feasible hosts matching level
            // 0/1 would have been returned above, so every feasible host
            // here scores rank 2 in the linear scan too. The level's
            // ordering is (temporal cost, waste, id) — the same as NILAS's
            // core scan — so instead of scoring all occupied hosts, walk
            // them latest-exiting first through the cache's exit order and
            // stop at the first cost bucket that cannot win.
            let mut best: Option<Candidate> = None;
            for &(exit, id) in cache.by_exit.iter().rev() {
                let cost = if degraded {
                    0
                } else {
                    buckets.cost(vm_exit.saturating_since(exit))
                };
                if let Some(current) = &best {
                    if cost > current.cost {
                        break;
                    }
                }
                if Some(id) == exclude {
                    continue;
                }
                let Some(host) = pool.host(id) else { continue };
                if !host.can_fit(request) {
                    continue;
                }
                if cache.cached_before(id, now) {
                    level2_hits += 1;
                }
                consider(
                    &mut best,
                    Candidate {
                        cost,
                        waste: waste_minimization_score(host, request),
                        id,
                    },
                );
            }
            if let Some(found) = best {
                break 'levels Some(found.id);
            }
            // Level 3: empty hosts, the last resort.
            best_of(&mut pool.empty_hosts())
        };
        drop(cache);
        self.nilas.add_cache_hits(hits + level2_hits);
        winner
    }
}

impl PlacementPolicy for LavaPolicy {
    fn name(&self) -> &'static str {
        "lava"
    }

    fn choose_host(
        &mut self,
        cluster: &Cluster,
        vm: &Vm,
        now: SimTime,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        match self.config.nilas.scan {
            CandidateScan::Indexed if self.config.nilas.cache_refresh.is_some() => {
                self.choose_host_indexed(cluster, vm, now, exclude)
            }
            _ => self.choose_host_linear(cluster, vm, now, exclude),
        }
    }

    fn on_vm_placed(&mut self, cluster: &mut Cluster, vm: VmId, host_id: HostId, now: SimTime) {
        self.nilas.on_vm_placed(cluster, vm, host_id, now);
        // Determine the class of the placed VM from its recorded initial
        // prediction (set by the scheduler just before placement).
        let vm_class = cluster
            .vm(vm)
            .map(|record| {
                let remaining = record
                    .initial_prediction()
                    .unwrap_or_else(|| self.predictor.predict_remaining(record, now));
                LifetimeClass::from_lifetime(remaining)
            })
            .unwrap_or(LifetimeClass::Lc1);

        let recycling_threshold = self.config.recycling_threshold;
        let deadline_same = self.deadline_for(vm_class, now);
        let Some(mut host) = cluster.host_mut(host_id) else {
            return;
        };
        match host.lifetime_state() {
            HostLifetimeState::Empty => {
                // First VM on an empty host: open it with the VM's class.
                host.open_with_class(vm_class, deadline_same);
            }
            HostLifetimeState::Open => {
                // Same-class VMs on an open host join the residual set so
                // the class only steps down when all of them have exited.
                if host.lifetime_class() == Some(vm_class) {
                    host.mark_residual(vm);
                }
                if host.utilization() >= recycling_threshold {
                    host.start_recycling();
                }
            }
            HostLifetimeState::Recycling => {
                // Gap-filling VMs are strictly shorter-lived; they are not
                // residual.
            }
        }
    }

    fn on_vm_exited(&mut self, cluster: &mut Cluster, host_id: HostId, now: SimTime) {
        self.nilas.on_vm_exited(cluster, host_id, now);
        let Some(mut host) = cluster.host_mut(host_id) else {
            return;
        };
        if host.is_empty() {
            host.reset_lifetime_state();
            return;
        }
        if host.lifetime_state() == HostLifetimeState::Recycling && host.residual_count() == 0 {
            // All residual VMs exited: the remaining VMs are at least one
            // class shorter (Fig. 5b).
            let new_class = host
                .lifetime_class()
                .map(LifetimeClass::step_down)
                .unwrap_or(LifetimeClass::Lc1);
            let deadline = self.deadline_for(new_class, now);
            host.step_class_down(deadline);
            self.class_downgrades += 1;
        }
    }

    fn on_tick(&mut self, cluster: &mut Cluster, now: SimTime) {
        // Deadline expiry → under-prediction → bump the class up (Fig. 5c).
        let expired: Vec<HostId> = cluster
            .hosts()
            .filter(|h| !h.is_empty())
            .filter(|h| h.deadline().map(|d| d < now).unwrap_or(false))
            .map(|h| h.id())
            .collect();
        for id in expired {
            let new_class = cluster
                .host(id)
                .and_then(|h| h.lifetime_class())
                .map(LifetimeClass::step_up)
                .unwrap_or(LifetimeClass::Lc4);
            let deadline = self.deadline_for(new_class, now);
            if let Some(mut host) = cluster.host_mut(id) {
                host.step_class_up(deadline);
                self.deadline_corrections += 1;
            }
        }
    }

    fn on_model_health(&mut self, error: f64, samples: usize) {
        if let Some(spec) = self.config.nilas.fallback {
            self.degraded = spec.should_degrade(error, samples, self.degraded);
            // Mirror the decision into the embedded tie-breaker so its
            // temporal cost term degrades in lock-step.
            self.nilas.set_degraded(self.degraded);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::host::HostSpec;
    use lava_core::resources::Resources;
    use lava_core::vm::VmSpec;
    use lava_model::predictor::OraclePredictor;

    fn cluster(hosts: usize) -> Cluster {
        Cluster::with_uniform_hosts(hosts, HostSpec::new(Resources::cores_gib(32, 128)))
    }

    fn vm_with(id: u64, hours: u64, cores: u64, created: SimTime) -> Vm {
        Vm::new(
            VmId(id),
            VmSpec::builder(Resources::cores_gib(cores, cores * 4)).build(),
            created,
            Duration::from_hours(hours),
        )
    }

    fn vm(id: u64, hours: u64) -> Vm {
        vm_with(id, hours, 4, SimTime::ZERO)
    }

    fn policy() -> LavaPolicy {
        LavaPolicy::with_defaults(Arc::new(OraclePredictor::new()))
    }

    /// Helper mimicking the scheduler: predict, place, notify.
    fn schedule(p: &mut LavaPolicy, c: &mut Cluster, mut v: Vm, now: SimTime) -> HostId {
        let pred = p.predictor.predict_remaining(&v, now);
        v.set_initial_prediction(pred);
        let host = p.choose_host(c, &v, now, None).expect("feasible host");
        let id = v.id();
        c.place(v, host).unwrap();
        p.on_vm_placed(c, id, host, now);
        host
    }

    fn exit(p: &mut LavaPolicy, c: &mut Cluster, vm: VmId, now: SimTime) {
        let (_, host) = c.remove(vm).unwrap();
        p.on_vm_exited(c, host, now);
    }

    #[test]
    fn first_vm_opens_host_with_its_class() {
        let mut c = cluster(2);
        let mut p = policy();
        let host = schedule(&mut p, &mut c, vm(1, 50), SimTime::ZERO); // LC3
        let h = c.host(host).unwrap();
        assert_eq!(h.lifetime_state(), HostLifetimeState::Open);
        assert_eq!(h.lifetime_class(), Some(LifetimeClass::Lc3));
        assert!(h.deadline().unwrap() > SimTime::ZERO + Duration::from_hours(100));
        assert_eq!(p.name(), "lava");
    }

    #[test]
    fn open_host_preferred_for_same_class_and_empty_hosts_avoided() {
        let mut c = cluster(3);
        let mut p = policy();
        let h0 = schedule(&mut p, &mut c, vm(1, 50), SimTime::ZERO); // LC3 open host
                                                                     // Another LC3 VM joins the same open host (preference level 1).
        let h1 = schedule(&mut p, &mut c, vm(2, 60), SimTime::ZERO);
        assert_eq!(h0, h1);
        // An LC1 VM has no recycling or matching open host; per Algorithm 3
        // it still prefers the non-empty host over opening an empty one.
        let h2 = schedule(&mut p, &mut c, vm(3, 0), SimTime::ZERO);
        assert_eq!(h2, h0);
        assert_eq!(c.pool().empty_host_count(), 2);
    }

    #[test]
    fn host_transitions_to_recycling_at_90_percent() {
        let mut c = cluster(2);
        let mut p = policy();
        // Each VM takes 8/32 cores = 25%; after 4 VMs utilisation is 100%,
        // crossing 90% on the 4th placement. Use 3 VMs → 75% (still open),
        // then a 6-core VM → ~94% (recycling).
        let mut host = HostId(0);
        for id in 1..=3 {
            host = schedule(
                &mut p,
                &mut c,
                vm_with(id, 50, 8, SimTime::ZERO),
                SimTime::ZERO,
            );
        }
        assert_eq!(
            c.host(host).unwrap().lifetime_state(),
            HostLifetimeState::Open
        );
        let h = schedule(
            &mut p,
            &mut c,
            vm_with(4, 50, 6, SimTime::ZERO),
            SimTime::ZERO,
        );
        assert_eq!(h, host);
        assert_eq!(
            c.host(host).unwrap().lifetime_state(),
            HostLifetimeState::Recycling
        );
        // All four same-class VMs are residual.
        assert_eq!(c.host(host).unwrap().residual_count(), 4);
    }

    /// Build an LC3 host and drive it into the recycling state: three
    /// 8-core VMs (75 %) then a 6-core VM (~94 % ≥ 90 %).
    fn build_recycling_host(p: &mut LavaPolicy, c: &mut Cluster) -> HostId {
        let mut host = HostId(0);
        for id in 1..=3 {
            host = schedule(p, c, vm_with(id, 50, 8, SimTime::ZERO), SimTime::ZERO);
        }
        let h = schedule(p, c, vm_with(4, 50, 6, SimTime::ZERO), SimTime::ZERO);
        assert_eq!(h, host);
        host
    }

    #[test]
    fn recycling_host_preferred_for_shorter_vms() {
        let mut c = cluster(3);
        let mut p = policy();
        let host = build_recycling_host(&mut p, &mut c);
        assert_eq!(
            c.host(host).unwrap().lifetime_state(),
            HostLifetimeState::Recycling
        );
        // A short (LC1) VM prefers the recycling LC3 host over opening a new
        // one.
        let h = schedule(
            &mut p,
            &mut c,
            vm_with(10, 0, 2, SimTime::ZERO),
            SimTime::ZERO,
        );
        assert_eq!(h, host);
        // The gap-filling VM is not residual.
        assert_eq!(c.host(host).unwrap().residual_count(), 4);
    }

    #[test]
    fn class_steps_down_when_residuals_exit() {
        let mut c = cluster(3);
        let mut p = policy();
        let host = build_recycling_host(&mut p, &mut c);
        // Fill a gap with an LC1 VM.
        let now = SimTime::ZERO + Duration::from_hours(1);
        schedule(&mut p, &mut c, vm_with(10, 0, 2, now), now);
        assert_eq!(
            c.host(host).unwrap().lifetime_class(),
            Some(LifetimeClass::Lc3)
        );

        // All residual (LC3) VMs exit; the gap VM remains.
        let later = SimTime::ZERO + Duration::from_hours(50);
        for id in 1..=4 {
            exit(&mut p, &mut c, VmId(id), later);
        }
        let h = c.host(host).unwrap();
        assert_eq!(h.lifetime_class(), Some(LifetimeClass::Lc2));
        assert_eq!(h.residual_count(), 1, "remaining VM becomes residual");
        assert_eq!(p.class_downgrades(), 1);
    }

    #[test]
    fn deadline_expiry_bumps_class_up() {
        let mut c = cluster(2);
        let mut p = policy();
        // A 30-minute VM (LC1) — pretend it actually runs longer by ticking
        // past the deadline while it is still on the host.
        let short = Vm::new(
            VmId(1),
            VmSpec::builder(Resources::cores_gib(4, 16)).build(),
            SimTime::ZERO,
            Duration::from_mins(30),
        );
        let host = schedule(&mut p, &mut c, short, SimTime::ZERO);
        assert_eq!(
            c.host(host).unwrap().lifetime_class(),
            Some(LifetimeClass::Lc1)
        );
        let deadline = c.host(host).unwrap().deadline().unwrap();
        p.on_tick(&mut c, deadline + Duration::from_mins(5));
        let h = c.host(host).unwrap();
        assert_eq!(h.lifetime_class(), Some(LifetimeClass::Lc2));
        assert!(h.deadline().unwrap() > deadline);
        assert_eq!(p.deadline_corrections(), 1);
    }

    #[test]
    fn host_resets_when_emptied() {
        let mut c = cluster(1);
        let mut p = policy();
        let host = schedule(&mut p, &mut c, vm(1, 5), SimTime::ZERO);
        exit(
            &mut p,
            &mut c,
            VmId(1),
            SimTime::ZERO + Duration::from_hours(5),
        );
        let h = c.host(host).unwrap();
        assert_eq!(h.lifetime_state(), HostLifetimeState::Empty);
        assert_eq!(h.lifetime_class(), None);
        assert_eq!(h.deadline(), None);
    }

    #[test]
    fn empty_hosts_are_last_resort() {
        let mut c = cluster(3);
        let mut p = policy();
        // An occupied (open, same-class) host exists: prefer it to empties.
        let first = schedule(&mut p, &mut c, vm(1, 5), SimTime::ZERO);
        let second = schedule(&mut p, &mut c, vm(2, 6), SimTime::ZERO);
        assert_eq!(first, second);
        assert_eq!(c.pool().empty_host_count(), 2);
    }

    #[test]
    fn degraded_lava_ignores_lifetime_classes() {
        use crate::policy::FallbackSpec;
        let fallback_config = || LavaConfig {
            nilas: NilasConfig {
                fallback: Some(FallbackSpec {
                    threshold: 0.5,
                    min_samples: 1,
                }),
                ..NilasConfig::default()
            },
            ..LavaConfig::default()
        };
        let mut c = cluster(3);
        let mut p = LavaPolicy::new(Arc::new(OraclePredictor::new()), fallback_config());
        // A recycling LC3 host that a healthy LAVA prefers for short VMs.
        let recycling = build_recycling_host(&mut p, &mut c);
        // A second occupied host with more free room, placed directly so
        // healthy LAVA's gap-filling does not route it to the recycling
        // host.
        let other = HostId(1);
        assert_ne!(recycling, other);
        let mut second = vm_with(20, 50, 2, SimTime::ZERO);
        second.set_initial_prediction(Duration::from_hours(50));
        c.place(second, other).unwrap();
        p.on_vm_placed(&mut c, VmId(20), other, SimTime::ZERO);

        let request = vm_with(30, 0, 2, SimTime::ZERO);
        assert_eq!(
            p.choose_host(&c, &request, SimTime::ZERO, None),
            Some(recycling),
            "healthy LAVA gap-fills the recycling host"
        );

        // Cross the threshold: class preference and temporal cost are
        // suppressed, so best-fit (least leftover waste) picks the fuller
        // host — which is still the recycling one — but the *indexed and
        // linear paths must agree* on the lifetime-agnostic decision.
        p.on_model_health(0.9, 8);
        assert!(p.is_degraded());
        let mut linear = LavaPolicy::new(
            Arc::new(OraclePredictor::new()),
            LavaConfig {
                nilas: NilasConfig {
                    scan: CandidateScan::Linear,
                    fallback: Some(FallbackSpec {
                        threshold: 0.5,
                        min_samples: 1,
                    }),
                    ..NilasConfig::default()
                },
                ..LavaConfig::default()
            },
        );
        linear.on_model_health(0.9, 8);
        assert!(linear.is_degraded());
        for (id, hours, cores) in [(40u64, 0u64, 2u64), (41, 5, 4), (42, 500, 8)] {
            let request = vm_with(id, hours, cores, SimTime::ZERO);
            let fast = p.choose_host(&c, &request, SimTime::ZERO, None);
            let slow = linear.choose_host(&c, &request, SimTime::ZERO, None);
            assert_eq!(fast, slow, "degraded parity for vm {id}");
            assert!(fast.is_some(), "occupied hosts are still preferred");
        }
        // Recovery below 80% of the threshold re-engages the classes.
        p.on_model_health(0.1, 8);
        assert!(!p.is_degraded());
        assert_eq!(
            p.choose_host(&c, &request, SimTime::ZERO, None),
            Some(recycling)
        );
    }

    mod properties {
        use super::*;
        use crate::la_binary::{LaBinaryConfig, LaBinaryPolicy};
        use lava_model::adaptive::BiasedPredictor;
        use proptest::prelude::*;

        proptest! {
            /// Under an adversarially biased predictor (every prediction
            /// scaled far below the truth), LAVA's deadline-expiry
            /// correction fires **exactly once per expiry** — never twice
            /// at the same tick, never without an expired deadline — and
            /// each firing steps the host's class up exactly one level, so
            /// the class converges until its slacked horizon covers the
            /// resident VM's real lifetime. LA-Binary on the same inputs
            /// never revises its one-shot prediction: hundreds of hours
            /// after the predicted exit it still classifies the host as
            /// short and keeps routing short arrivals onto it.
            #[test]
            fn step_up_fires_once_per_expiry_and_converges(
                actual_hours in 120u64..900,
                bias_pct in -95i16..=-60,
                tick_mins in 30u64..360,
            ) {
                let biased: Arc<dyn LifetimePredictor> = Arc::new(BiasedPredictor::new(
                    Arc::new(OraclePredictor::new()),
                    bias_pct,
                ));
                let mut c = cluster(2);
                let mut p = LavaPolicy::with_defaults(biased.clone());
                let host = schedule(
                    &mut p,
                    &mut c,
                    vm_with(1, actual_hours, 4, SimTime::ZERO),
                    SimTime::ZERO,
                );
                let initial_class = c.host(host).unwrap().lifetime_class().unwrap();
                let true_class =
                    LifetimeClass::from_lifetime(Duration::from_hours(actual_hours));
                prop_assert!(initial_class <= true_class);

                let exit_time = SimTime::ZERO + Duration::from_hours(actual_hours);
                let step = Duration::from_mins(tick_mins);
                let mut now = SimTime::ZERO;
                while now < exit_time {
                    now += step;
                    let before = c.host(host).unwrap();
                    let before_class = before.lifetime_class().unwrap();
                    let expired = before.deadline().map(|d| d < now).unwrap_or(false);
                    let fired_before = p.deadline_corrections();
                    p.on_tick(&mut c, now);
                    let fired = p.deadline_corrections() - fired_before;
                    let class_now = c.host(host).unwrap().lifetime_class().unwrap();
                    if expired {
                        prop_assert_eq!(fired, 1, "an expiry fires exactly one step-up");
                        prop_assert_eq!(class_now, before_class.step_up());
                    } else {
                        prop_assert_eq!(fired, 0, "no expiry, no correction");
                        prop_assert_eq!(class_now, before_class);
                    }
                    // Re-ticking the same instant must not double-fire: the
                    // correction pushed the deadline past `now`.
                    p.on_tick(&mut c, now);
                    prop_assert_eq!(p.deadline_corrections(), fired_before + fired);
                }
                // Converged: the corrections stopped because the (slacked)
                // horizon now covers the VM's real exit.
                let final_host = c.host(host).unwrap();
                prop_assert!(final_host.deadline().unwrap() >= exit_time);
                prop_assert!(final_host.lifetime_class().unwrap() >= initial_class);

                // LA-Binary contrast: same biased predictor, no correction
                // machinery. One hour before the VM's *real* exit the host
                // has long outlived its one-shot predicted drain time, yet
                // LA still classifies it as short-lived and routes a short
                // arrival onto it in preference to the empty host.
                let mut la = LaBinaryPolicy::new(biased.clone(), LaBinaryConfig::default());
                let mut c2 = cluster(2);
                let mut resident = vm_with(1, actual_hours, 4, SimTime::ZERO);
                resident.set_initial_prediction(
                    biased.predict_remaining(&resident, SimTime::ZERO),
                );
                c2.place(resident, HostId(0)).unwrap();
                let late = SimTime::ZERO + Duration::from_hours(actual_hours - 1);
                let mut probe = vm_with(99, 1, 2, late);
                probe.set_initial_prediction(Duration::from_mins(30));
                prop_assert_eq!(
                    la.choose_host(&c2, &probe, late, None),
                    Some(HostId(0)),
                    "LA-Binary never corrects the stale one-shot prediction"
                );
            }
        }
    }

    #[test]
    fn indexed_and_linear_scans_agree_on_mixed_pool() {
        let mut c = cluster(6);
        let mut p = policy();
        // Build a mixed pool: recycling LC3 host, open hosts, occupied and
        // empty hosts.
        build_recycling_host(&mut p, &mut c);
        schedule(
            &mut p,
            &mut c,
            vm_with(20, 5, 8, SimTime::ZERO),
            SimTime::ZERO,
        ); // LC2 open
        schedule(
            &mut p,
            &mut c,
            vm_with(21, 500, 8, SimTime::ZERO),
            SimTime::ZERO,
        ); // LC4 open

        for (id, hours, cores) in [(30u64, 0u64, 2u64), (31, 5, 4), (32, 50, 4), (33, 500, 8)] {
            let request = vm_with(id, hours, cores, SimTime::ZERO);
            let mut linear = LavaPolicy::new(
                Arc::new(OraclePredictor::new()),
                LavaConfig {
                    nilas: NilasConfig {
                        scan: CandidateScan::Linear,
                        ..NilasConfig::default()
                    },
                    ..LavaConfig::default()
                },
            );
            let fast = p.choose_host(&c, &request, SimTime::ZERO, None);
            let slow = linear.choose_host(&c, &request, SimTime::ZERO, None);
            assert_eq!(fast, slow, "vm {id} ({hours}h, {cores} cores)");
        }
    }
}
