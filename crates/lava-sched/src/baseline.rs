//! Lifetime-agnostic baseline policies.
//!
//! * [`BestFitPolicy`] — classic multi-dimensional Best Fit, the scoring
//!   used by the LA paper's scheduler and by Borg before Waste
//!   Minimisation.
//! * [`WasteMinimizationPolicy`] — the production baseline of §2.2: prefer
//!   non-empty hosts, then placements that keep the remaining free shape
//!   balanced (usable by anticipated workloads), then tightness.
//!
//! Both ignore lifetimes entirely; they are the "production baseline"
//! against which the paper reports improvements.

use crate::cluster::Cluster;
use crate::policy::PlacementPolicy;
use crate::scoring::{
    avoid_empty_host_score, best_fit_score, waste_minimization_score, ScoreVector,
};
use lava_core::host::HostId;
use lava_core::time::SimTime;
use lava_core::vm::Vm;

/// Pick the feasible host with the lexicographically smallest score.
///
/// Ties beyond the score vector are broken by host id, which keeps runs
/// deterministic.
pub(crate) fn argmin_host<F>(
    cluster: &Cluster,
    vm: &Vm,
    exclude: Option<HostId>,
    mut score: F,
) -> Option<HostId>
where
    F: FnMut(&lava_core::host::Host) -> ScoreVector,
{
    let mut best: Option<(ScoreVector, HostId)> = None;
    for host in cluster.feasible_hosts(vm.resources()) {
        if Some(host.id()) == exclude {
            continue;
        }
        let s = score(host);
        match &best {
            Some((best_score, _)) if !s.is_better_than(best_score) => {}
            _ => best = Some((s, host.id())),
        }
    }
    best.map(|(_, id)| id)
}

/// Classic Best Fit placement.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFitPolicy;

impl BestFitPolicy {
    /// Create a Best Fit policy.
    pub fn new() -> BestFitPolicy {
        BestFitPolicy
    }
}

impl PlacementPolicy for BestFitPolicy {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn choose_host(
        &mut self,
        cluster: &Cluster,
        vm: &Vm,
        _now: SimTime,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        argmin_host(cluster, vm, exclude, |host| {
            ScoreVector::new([best_fit_score(host, vm.resources())])
        })
    }
}

/// The production baseline: Waste Minimisation with empty-host preservation.
#[derive(Debug, Clone, Copy, Default)]
pub struct WasteMinimizationPolicy;

impl WasteMinimizationPolicy {
    /// Create the production-baseline policy.
    pub fn new() -> WasteMinimizationPolicy {
        WasteMinimizationPolicy
    }
}

impl PlacementPolicy for WasteMinimizationPolicy {
    fn name(&self) -> &'static str {
        "waste-min"
    }

    fn choose_host(
        &mut self,
        cluster: &Cluster,
        vm: &Vm,
        _now: SimTime,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        argmin_host(cluster, vm, exclude, |host| {
            ScoreVector::new([
                avoid_empty_host_score(host),
                waste_minimization_score(host, vm.resources()),
            ])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::host::HostSpec;
    use lava_core::resources::Resources;
    use lava_core::time::Duration;
    use lava_core::vm::{VmId, VmSpec};

    fn cluster() -> Cluster {
        Cluster::with_uniform_hosts(3, HostSpec::new(Resources::cores_gib(32, 128)))
    }

    fn vm(id: u64, cores: u64) -> Vm {
        Vm::new(
            VmId(id),
            VmSpec::builder(Resources::cores_gib(cores, cores * 4)).build(),
            SimTime::ZERO,
            Duration::from_hours(1),
        )
    }

    #[test]
    fn best_fit_prefers_tightest_host() {
        let mut c = cluster();
        c.place(vm(1, 24), HostId(1)).unwrap(); // host 1 has 8 cores free
        c.place(vm(2, 8), HostId(2)).unwrap(); // host 2 has 24 cores free
        let mut policy = BestFitPolicy::new();
        let chosen = policy
            .choose_host(&c, &vm(3, 8), SimTime::ZERO, None)
            .unwrap();
        assert_eq!(chosen, HostId(1));
        assert_eq!(policy.name(), "best-fit");
    }

    #[test]
    fn waste_min_avoids_empty_hosts() {
        let mut c = cluster();
        c.place(vm(1, 8), HostId(0)).unwrap();
        let mut policy = WasteMinimizationPolicy::new();
        let chosen = policy
            .choose_host(&c, &vm(2, 8), SimTime::ZERO, None)
            .unwrap();
        // Hosts 1 and 2 are empty; the policy must pick the occupied host 0.
        assert_eq!(chosen, HostId(0));
        assert_eq!(policy.name(), "waste-min");
    }

    #[test]
    fn exclude_prevents_choosing_current_host() {
        let mut c = cluster();
        c.place(vm(1, 8), HostId(0)).unwrap();
        let mut policy = WasteMinimizationPolicy::new();
        let chosen = policy
            .choose_host(&c, &vm(2, 8), SimTime::ZERO, Some(HostId(0)))
            .unwrap();
        assert_ne!(chosen, HostId(0));
    }

    #[test]
    fn returns_none_when_nothing_fits() {
        let c = cluster();
        let mut policy = BestFitPolicy::new();
        let huge = vm(9, 64);
        assert_eq!(policy.choose_host(&c, &huge, SimTime::ZERO, None), None);
    }

    #[test]
    fn deterministic_tie_break_by_host_id() {
        let c = cluster();
        let mut policy = BestFitPolicy::new();
        // All hosts are identical and empty: the first id must win.
        let chosen = policy
            .choose_host(&c, &vm(1, 4), SimTime::ZERO, None)
            .unwrap();
        assert_eq!(chosen, HostId(0));
    }
}
