//! Lexicographic host scoring, mirroring Borg's scoring structure (§2.2).
//!
//! Borg evaluates one scoring dimension at a time, using the next dimension
//! only to break ties. NILAS inserts its temporal cost one level above the
//! bin-packing score; LAVA adds a coarser class-preference dimension above
//! that. This module provides the [`ScoreVector`] type (lower is better,
//! compared lexicographically) and the shared bin-packing score dimensions.
//!
//! [`ScoreVector`] is a fixed-capacity inline value: scoring a candidate
//! host performs no heap allocation, which matters because the placement
//! hot path scores up to one candidate per host per decision.

use lava_core::host::Host;
use lava_core::resources::Resources;
use std::cmp::Ordering;

/// Maximum number of lexicographic dimensions a score can carry. LAVA uses
/// four (rank, sub-rank, temporal cost, waste); the headroom is for
/// experiments layering extra dimensions.
pub const MAX_SCORE_DIMS: usize = 6;

/// A lexicographic score: earlier entries dominate later ones, and lower is
/// better in every dimension. Stored inline (no heap allocation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreVector {
    dims: [f64; MAX_SCORE_DIMS],
    len: u8,
}

impl ScoreVector {
    /// Create a score from its dimensions (most significant first).
    ///
    /// The dimension count is checked at compile time against
    /// [`MAX_SCORE_DIMS`].
    pub fn new<const N: usize>(dims: [f64; N]) -> ScoreVector {
        const {
            assert!(N <= MAX_SCORE_DIMS, "too many score dimensions");
        }
        let mut inline = [0.0; MAX_SCORE_DIMS];
        inline[..N].copy_from_slice(&dims);
        ScoreVector {
            dims: inline,
            len: N as u8,
        }
    }

    /// The raw dimensions.
    pub fn dims(&self) -> &[f64] {
        &self.dims[..self.len as usize]
    }

    /// Lexicographic comparison treating NaN as "worst".
    pub fn compare(&self, other: &ScoreVector) -> Ordering {
        for (a, b) in self.dims().iter().zip(other.dims().iter()) {
            let a = if a.is_nan() { f64::INFINITY } else { *a };
            let b = if b.is_nan() { f64::INFINITY } else { *b };
            match a.partial_cmp(&b).unwrap_or(Ordering::Equal) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.len.cmp(&other.len)
    }

    /// True if `self` is strictly better (lower) than `other`.
    pub fn is_better_than(&self, other: &ScoreVector) -> bool {
        self.compare(other) == Ordering::Less
    }
}

/// The classic Best Fit bin-packing score: the normalised free resources
/// left on the host *after* placing the request. Lower means a tighter fit.
///
/// This is the scoring used by LA (Barbalho et al., 2023).
pub fn best_fit_score(host: &Host, request: Resources) -> f64 {
    let free_after = host.free().saturating_sub(&request);
    free_after.normalized_sum(&host.capacity())
}

/// Borg's Waste-Minimisation score (§2.2): prefer placements that preserve
/// *useful empty shapes* for anticipated workloads.
///
/// The score combines two terms (both lower-is-better):
///
/// 1. the resource-imbalance of the host after placement — free CPU and
///    free memory fractions that diverge strand whichever resource is in
///    excess (§2.3's stranding example: "a host may contain free memory but
///    no free CPUs");
/// 2. the best-fit tightness, weighted less than imbalance.
///
/// Keeping the free shape balanced means the leftover space still matches
/// typical VM shapes, which is the essence of the production baseline
/// without modelling Google's specific shape forecast.
pub fn waste_minimization_score(host: &Host, request: Resources) -> f64 {
    let capacity = host.capacity();
    let free_after = host.free().saturating_sub(&request);
    let cpu_frac = free_after.fraction_of(&capacity, lava_core::resources::ResourceKind::Cpu);
    let mem_frac = free_after.fraction_of(&capacity, lava_core::resources::ResourceKind::Memory);
    let imbalance = (cpu_frac - mem_frac).abs();
    let tightness = free_after.normalized_sum(&capacity);
    2.0 * imbalance + tightness
}

/// Empty-host preservation dimension: 1.0 for an empty host, 0.0 otherwise.
/// Placing this dimension above the bin-packing score makes the scheduler
/// open a new (empty) host only when no occupied host fits, which is how the
/// production baseline protects empty hosts.
pub fn avoid_empty_host_score(host: &Host) -> f64 {
    if host.is_empty() {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::host::{HostId, HostSpec};
    use lava_core::vm::VmId;

    fn host_with_used(used_cores: u64, used_mem_gib: u64) -> Host {
        let mut h = Host::new(HostId(0), HostSpec::new(Resources::cores_gib(32, 128)));
        if used_cores > 0 || used_mem_gib > 0 {
            h.place(VmId(1), Resources::cores_gib(used_cores, used_mem_gib))
                .unwrap();
        }
        h
    }

    #[test]
    fn score_vector_lexicographic() {
        let a = ScoreVector::new([1.0, 5.0]);
        let b = ScoreVector::new([1.0, 7.0]);
        let c = ScoreVector::new([0.0, 100.0]);
        assert!(a.is_better_than(&b));
        assert!(c.is_better_than(&a));
        assert_eq!(a.compare(&a), Ordering::Equal);
        assert_eq!(a.dims(), &[1.0, 5.0]);
    }

    #[test]
    fn score_vector_nan_is_worst() {
        let nan = ScoreVector::new([f64::NAN]);
        let fine = ScoreVector::new([1e9]);
        assert!(fine.is_better_than(&nan));
    }

    #[test]
    fn shorter_vector_wins_ties() {
        let a = ScoreVector::new([1.0]);
        let b = ScoreVector::new([1.0, 0.0]);
        assert!(a.is_better_than(&b));
    }

    #[test]
    fn score_vector_is_inline_copy() {
        // The score must be Copy (no heap state) for the hot path.
        fn assert_copy<T: Copy>() {}
        assert_copy::<ScoreVector>();
        assert!(std::mem::size_of::<ScoreVector>() <= (MAX_SCORE_DIMS + 1) * 8);
    }

    #[test]
    fn best_fit_prefers_tighter_host() {
        let tight = host_with_used(24, 96);
        let loose = host_with_used(4, 16);
        let request = Resources::cores_gib(4, 16);
        assert!(best_fit_score(&tight, request) < best_fit_score(&loose, request));
    }

    #[test]
    fn waste_minimization_penalises_imbalance() {
        // Host A would be left with balanced free resources, host B with
        // free memory but no free CPU (stranded memory).
        let host = host_with_used(0, 0);
        let balanced_request = Resources::cores_gib(16, 64);
        let imbalanced_request = Resources::cores_gib(31, 16);
        assert!(
            waste_minimization_score(&host, balanced_request)
                < waste_minimization_score(&host, imbalanced_request)
        );
    }

    #[test]
    fn avoid_empty_host_dimension() {
        assert_eq!(avoid_empty_host_score(&host_with_used(0, 0)), 1.0);
        assert_eq!(avoid_empty_host_score(&host_with_used(1, 1)), 0.0);
    }
}
