//! The online placement service: the fleet router and cells wrapped as a
//! long-running request/response engine with admission control,
//! backpressure and latency SLOs.
//!
//! Everything else in this workspace is batch simulation — events are
//! consumed as fast as the engine can process them, and the observable is
//! packing quality. A production allocator is a *service*: it answers a
//! live request stream it does not control, and its second observable is
//! **placement latency** under load. This crate adds that axis:
//!
//! ```text
//!   open-loop arrivals          PlacementService
//!  (Poisson/Burst/Diurnal)   ┌───────────────────────────────────────┐
//!  PlaceRequest ────────────▶│ admission ─▶ [bounded queue] ─▶ router│
//!        ▲                   │    │                             │    │
//!        │ Rejected::        │    ▼                             ▼    │
//!        │ {QueueFull, Shed} │  shed /                    cell 0..N  │
//!        ◀───────────────────│  queue-full                (Scheduler)│
//!  ReleaseRequest ──────────▶│ releases ──────────────────────▶ exits│
//!                            └───────────────────────────────────────┘
//!                                     PlaceResponse (latency = decided − enqueued)
//! ```
//!
//! * **Admission control** ([`lava_sim::arrivals::AdmissionPolicy`]) runs
//!   at arrival time: naive FIFO admits until the bounded queue is
//!   physically full; depth shedding drops arrivals past a depth
//!   threshold to protect the latency of what is already queued;
//!   lifetime-aware shedding additionally spares requests whose
//!   *predicted* lifetime is long — prediction-informed admission above
//!   the packing layer.
//! * **Backpressure** is explicit: a rejected request gets
//!   [`Rejected::QueueFull`](lava_core::serve::Rejected) or
//!   [`Rejected::Shed`](lava_core::serve::Rejected) with a retry-after
//!   hint, never silence.
//! * **Latency** is tracked per request from enqueue to placement
//!   decision on a microsecond virtual clock
//!   ([`lava_core::serve::Micros`]), with service times derived from the
//!   scheduler's deterministic
//!   [`DecisionCost`](lava_sched::scheduler::DecisionCost) — so p50/p99/
//!   p999 SLO figures replay bit-identically across machines and runs
//!   (asserted via [`ServeReport::decision_digest`]).
//! * **Fault tolerance**: an [`IncidentPlan`](lava_sim::chaos::IncidentPlan)
//!   attached via [`PlacementService::attach_incidents`] schedules cell
//!   outages, predictor degradations and arrival storms on the same
//!   virtual clock. Per-cell circuit breakers ([`health`]) trip after
//!   consecutive failures, fail traffic over to healthy cells with
//!   seeded exponential backoff, and a tripped majority puts the fleet
//!   in *brownout* (conservative routing, tighter shedding). Requests
//!   carry optional deadlines and retry budgets; an expired request
//!   resolves to [`Rejected::DeadlineExceeded`](lava_core::serve::Rejected)
//!   rather than consuming decision capacity.
//!
//! The entry point is [`run_serve`], which runs the serving scenario an
//! [`ExperimentSpec`](lava_sim::experiment::ExperimentSpec) declares
//! through its serde-defaulted `serve` section; [`PlacementService`] is
//! the engine underneath for callers that drive their own request
//! streams.
//!
//! # Example
//!
//! ```
//! use lava_core::time::Duration;
//! use lava_sched::Algorithm;
//! use lava_serve::run_serve;
//! use lava_sim::arrivals::ServeConfig;
//! use lava_sim::experiment::{Experiment, PredictorSpec};
//!
//! let spec = Experiment::builder()
//!     .name("serve-demo")
//!     .hosts(24)
//!     .duration(Duration::from_mins(10))
//!     .seed(42)
//!     .predictor(PredictorSpec::Oracle)
//!     .algorithm(Algorithm::Nilas)
//!     .serve(ServeConfig::at_rate(10.0))
//!     .build()
//!     .expect("valid spec");
//! let report = run_serve(&spec).expect("serving run");
//! assert_eq!(report.shed + report.queue_full + report.latency.count(), report.offered);
//! assert!(report.latency.quantile(0.99) > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod health;
pub mod queue;
pub mod service;

pub use health::{BreakerState, HealthTracker};
pub use queue::BoundedQueue;
pub use service::{run_serve, EpochStats, PlacementService, ServeError, ServeReport};
