//! The bounded request queue the service's mailboxes are built on.

use std::collections::VecDeque;

/// A bounded FIFO queue with a high-water mark.
///
/// This is the deterministic, single-threaded core of a bounded MPSC
/// mailbox: the serving engine runs on a virtual clock, so "concurrent"
/// producers are already serialised into one arrival-ordered stream by the
/// time they reach the queue, and what remains of an MPSC channel is
/// exactly this — a FIFO with a capacity bound that rejects instead of
/// blocking (`try_send` semantics; a virtual-time engine must never
/// block), plus the depth instrumentation admission control reads.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    bound: usize,
    high_water: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `bound` items.
    pub fn new(bound: usize) -> BoundedQueue<T> {
        BoundedQueue {
            items: VecDeque::new(),
            bound,
            high_water: 0,
        }
    }

    /// Enqueue `item`, or hand it back if the queue is full (the
    /// `try_send` backpressure signal).
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.bound {
            return Err(item);
        }
        self.items.push_back(item);
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// The oldest item, if any, without dequeueing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The capacity bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_bound() {
        let mut q = BoundedQueue::new(2);
        assert!(q.is_empty());
        q.push(1).unwrap();
        q.push(2).unwrap();
        // Full: the rejected item comes back to the caller.
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek(), Some(&1));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let mut q = BoundedQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        q.pop();
        q.pop();
        q.push(4).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.bound(), 8);
    }
}
