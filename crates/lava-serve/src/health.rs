//! Per-cell health tracking for the placement service: circuit breakers
//! with seeded exponential backoff, half-open probing, and fleet-wide
//! brownout.
//!
//! The router (`lava_sim::fleet::Router`) picks cells from *frozen
//! summaries* — it has no concept of a cell that stopped answering. This
//! module layers that concept on top, as a production allocator would:
//!
//! * Every cell carries a breaker. Consecutive failures (`no_capacity`
//!   decisions, which is also how a declared outage manifests to the
//!   decision loop) trip it **open**; while open the cell is skipped and
//!   requests **fail over** to the next closed cell instead of burning a
//!   decision slot on a dead cell.
//! * An open breaker cools down for an exponentially growing, seeded
//!   ±jitter interval, then goes **half-open**: the cell takes its own
//!   primary-routed traffic again as a probe (but is not offered other
//!   cells' failover traffic). One success closes it and resets the
//!   backoff; one failure re-opens it at the doubled interval.
//! * When a majority of cells is tripped the fleet enters **brownout**:
//!   summary-driven routing is not trustworthy (most summaries describe
//!   dead cells), so routing falls back to a deterministic hash over the
//!   still-closed cells, and the service tightens its shedding threshold.
//!   Brownout exits hysteretically — only once the tripped count falls to
//!   a quarter of the fleet — so the fleet doesn't flap at the boundary.
//!
//! All state transitions are pure functions of (config, seed, the
//! observed failure/success sequence, virtual time), so a chaos run
//! replays bit-identically on any machine and thread count.

use lava_core::serve::Micros;
use lava_sim::arrivals::BreakerConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Domain-separation constant mixed into the run seed for the per-cell
/// backoff-jitter streams.
const HEALTH_SEED_SALT: u64 = 0xBEA7_0FF0_CE11_0001;

/// splitmix64 finalizer — the same full-avalanche mix the fleet router
/// hashes VM ids with, reused here so brownout's hash-over-healthy-cells
/// routing spreads requests the same way.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One cell's breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: routable as primary and as a failover target.
    Closed,
    /// Tripped: skipped entirely until `until`, then half-open.
    Open {
        /// When the cooldown interval ends.
        until: Micros,
    },
    /// Probing: takes primary-routed traffic, refused failover traffic.
    /// The next outcome decides — success closes, failure re-opens.
    HalfOpen,
}

#[derive(Debug)]
struct CellHealth {
    state: BreakerState,
    /// Consecutive failures since the last success.
    failures: u32,
    /// Backoff doublings applied since the breaker last closed.
    trips: u32,
    /// Seeded jitter stream; drawn from once per trip.
    rng: ChaCha8Rng,
}

/// The service's per-cell health table. See the module docs for the
/// state machine.
#[derive(Debug)]
pub struct HealthTracker {
    config: BreakerConfig,
    cells: Vec<CellHealth>,
    brownout: bool,
    /// Total breaker trips over the run (reported for observability).
    trips_total: u64,
}

impl HealthTracker {
    /// A tracker for `cells` cells, jitter streams seeded from `seed`.
    pub fn new(config: BreakerConfig, cells: usize, seed: u64) -> HealthTracker {
        let cells = (0..cells as u64)
            .map(|cell| CellHealth {
                state: BreakerState::Closed,
                failures: 0,
                trips: 0,
                rng: ChaCha8Rng::seed_from_u64(
                    seed ^ HEALTH_SEED_SALT ^ cell.wrapping_mul(0x9E37_79B9),
                ),
            })
            .collect();
        HealthTracker {
            config,
            cells,
            brownout: false,
            trips_total: 0,
        }
    }

    /// The cell's state at `now` (lazily promotes an expired `Open` to
    /// `HalfOpen`).
    pub fn state(&mut self, cell: usize, now: Micros) -> BreakerState {
        let entry = &mut self.cells[cell];
        if let BreakerState::Open { until } = entry.state {
            if now >= until {
                entry.state = BreakerState::HalfOpen;
            }
        }
        entry.state
    }

    /// Record a successful decision (`placed`) on `cell`.
    pub fn on_success(&mut self, cell: usize, now: Micros) {
        let state = self.state(cell, now);
        let entry = &mut self.cells[cell];
        entry.failures = 0;
        if state == BreakerState::HalfOpen {
            // The probe succeeded: close and forget the backoff history.
            entry.state = BreakerState::Closed;
            entry.trips = 0;
            self.update_brownout();
        }
    }

    /// Record a failed decision (`no_capacity`) on `cell`.
    pub fn on_failure(&mut self, cell: usize, now: Micros) {
        match self.state(cell, now) {
            BreakerState::Closed => {
                let entry = &mut self.cells[cell];
                entry.failures += 1;
                if entry.failures >= self.config.failure_threshold {
                    self.trip(cell, now);
                }
            }
            // A failed probe re-opens at the doubled interval.
            BreakerState::HalfOpen => self.trip(cell, now),
            // Already open (a decision that raced the trip): nothing new.
            BreakerState::Open { .. } => {}
        }
    }

    /// Trip `cell` open for the next (jittered, doubling) interval.
    fn trip(&mut self, cell: usize, now: Micros) {
        let config = self.config;
        let entry = &mut self.cells[cell];
        let interval = config
            .base_backoff_us
            .checked_shl(entry.trips.min(63))
            .unwrap_or(u64::MAX)
            .min(config.max_backoff_us);
        // ±jitter, drawn from the cell's seeded stream. jitter = 0 keeps
        // the draw (uniform stream advance) but ignores it.
        let u: f64 = entry.rng.gen_range(0.0..1.0);
        let factor = 1.0 + config.jitter * (2.0 * u - 1.0);
        let jittered = ((interval as f64 * factor) as u64).max(1);
        entry.state = BreakerState::Open {
            until: now + Micros(jittered),
        };
        entry.trips = entry.trips.saturating_add(1);
        self.trips_total += 1;
        self.update_brownout();
    }

    /// Recompute brownout with hysteresis: enter when a strict majority of
    /// cells is tripped (open or half-open), exit only once at most a
    /// quarter is.
    fn update_brownout(&mut self) {
        let tripped = self
            .cells
            .iter()
            .filter(|c| c.state != BreakerState::Closed)
            .count();
        if self.brownout {
            if tripped * 4 <= self.cells.len() {
                self.brownout = false;
            }
        } else if tripped * 2 > self.cells.len() {
            self.brownout = true;
        }
    }

    /// Whether the fleet is in brownout.
    pub fn in_brownout(&self) -> bool {
        self.brownout
    }

    /// Total breaker trips so far.
    pub fn trips(&self) -> u64 {
        self.trips_total
    }

    /// Whether `cell` may take primary-routed traffic at `now` (closed or
    /// probing half-open — only a cooling `Open` breaker refuses).
    pub fn primary_routable(&mut self, cell: usize, now: Micros) -> bool {
        !matches!(self.state(cell, now), BreakerState::Open { .. })
    }

    /// The failover target for a request whose primary cell is tripped:
    /// the next *closed* cell scanning upward from `from` (wrapping), or
    /// `None` when no closed cell exists. Half-open cells are skipped —
    /// a probing cell gets its own traffic back, not everyone else's.
    pub fn failover_target(&mut self, from: usize, now: Micros) -> Option<usize> {
        let n = self.cells.len();
        (1..n)
            .map(|step| (from + step) % n)
            .find(|&cell| self.state(cell, now) == BreakerState::Closed)
    }

    /// Brownout routing: a deterministic hash of `key` over the closed
    /// cells (summary-driven policies are meaningless when most summaries
    /// describe tripped cells). `None` when no cell is closed.
    pub fn brownout_target(&mut self, key: u64, now: Micros) -> Option<usize> {
        let healthy: Vec<usize> = (0..self.cells.len())
            .filter(|&cell| self.state(cell, now) == BreakerState::Closed)
            .collect();
        if healthy.is_empty() {
            None
        } else {
            Some(healthy[(mix64(key) % healthy.len() as u64) as usize])
        }
    }

    /// How long a retry of a failure on `cell` should wait at `now`: the
    /// remaining cooldown when the breaker is open, else `None` (the
    /// caller falls back to its own pacing).
    pub fn retry_backoff(&mut self, cell: usize, now: Micros) -> Option<Micros> {
        match self.state(cell, now) {
            BreakerState::Open { until } => Some(until.saturating_since(now)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            base_backoff_us: 1000,
            max_backoff_us: 8000,
            jitter: 0.0,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_and_success_resets_the_count() {
        let mut health = HealthTracker::new(config(), 4, 7);
        let now = Micros(100);
        health.on_failure(0, now);
        health.on_failure(0, now);
        health.on_success(0, now);
        health.on_failure(0, now);
        health.on_failure(0, now);
        assert_eq!(health.state(0, now), BreakerState::Closed);
        health.on_failure(0, now);
        assert_eq!(
            health.state(0, now),
            BreakerState::Open {
                until: Micros(1100)
            }
        );
        assert_eq!(health.trips(), 1);
        assert!(!health.primary_routable(0, now));
        // Failover scans upward from the tripped cell.
        assert_eq!(health.failover_target(0, now), Some(1));
    }

    #[test]
    fn half_open_probe_closes_on_success_and_doubles_on_failure() {
        let mut health = HealthTracker::new(config(), 2, 7);
        for _ in 0..3 {
            health.on_failure(0, Micros(0));
        }
        // Cooling: skipped as primary and as failover target.
        assert!(!health.primary_routable(0, Micros(500)));
        assert_eq!(health.failover_target(1, Micros(500)), None);
        // Past the interval: half-open, primary-routable, still not a
        // failover target.
        assert!(health.primary_routable(0, Micros(1000)));
        assert_eq!(health.state(0, Micros(1000)), BreakerState::HalfOpen);
        assert_eq!(health.failover_target(1, Micros(1000)), None);
        // Probe fails: re-open with the doubled interval.
        health.on_failure(0, Micros(1000));
        assert_eq!(
            health.state(0, Micros(1000)),
            BreakerState::Open {
                until: Micros(3000)
            }
        );
        // Probe succeeds after the next cooldown: closed, backoff reset.
        health.on_success(0, Micros(3000));
        assert_eq!(health.state(0, Micros(3000)), BreakerState::Closed);
        for _ in 0..3 {
            health.on_failure(0, Micros(10_000));
        }
        assert_eq!(
            health.state(0, Micros(10_000)),
            BreakerState::Open {
                until: Micros(11_000)
            },
            "closing must reset the doubling"
        );
    }

    #[test]
    fn backoff_doubles_up_to_the_cap() {
        // Each failed half-open probe re-trips: intervals double then
        // saturate at the cap.
        let mut health = HealthTracker::new(config(), 1, 7);
        let mut now = Micros(0);
        let mut seen = Vec::new();
        for _ in 0..6 {
            for _ in 0..3 {
                health.on_failure(0, now);
            }
            let BreakerState::Open { until } = health.state(0, now) else {
                panic!("open expected");
            };
            seen.push(until.saturating_since(now).as_micros());
            now = until;
        }
        assert_eq!(seen, vec![1000, 2000, 4000, 8000, 8000, 8000]);
    }

    #[test]
    fn brownout_enters_on_majority_and_exits_hysteretically() {
        let mut health = HealthTracker::new(config(), 4, 7);
        let now = Micros(0);
        for cell in 0..3 {
            for _ in 0..3 {
                health.on_failure(cell, now);
            }
        }
        // 3 of 4 tripped: majority → brownout.
        assert!(health.in_brownout());
        // Brownout routing hashes over the one closed cell.
        assert_eq!(health.brownout_target(42, now), Some(3));
        // One recovery (2/4 tripped) is not enough to exit...
        let later = Micros(1000);
        assert_eq!(health.state(0, later), BreakerState::HalfOpen);
        health.on_success(0, later);
        assert!(
            health.in_brownout(),
            "exit threshold is a quarter, not half"
        );
        // ...two more are (1/4 tripped).
        health.on_success(1, later);
        assert!(!health.in_brownout());
    }

    #[test]
    fn jitter_is_seeded_and_replayable() {
        let jittery = BreakerConfig {
            jitter: 0.5,
            ..config()
        };
        let run = |seed: u64| {
            let mut health = HealthTracker::new(jittery, 2, seed);
            let mut untils = Vec::new();
            let mut now = Micros(0);
            for _ in 0..4 {
                for _ in 0..3 {
                    health.on_failure(0, now);
                }
                let BreakerState::Open { until } = health.state(0, now) else {
                    panic!("open expected");
                };
                untils.push(until);
                now = until;
            }
            untils
        };
        assert_eq!(run(7), run(7), "same seed, same jitter");
        assert_ne!(run(7), run(8), "different seed, different jitter");
    }
}
