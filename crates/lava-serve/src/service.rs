//! The placement service engine: a virtual-time single-server queueing
//! system over the fleet router and per-cell schedulers.

use crate::health::HealthTracker;
use crate::queue::BoundedQueue;
use lava_core::cell::CellId;
use lava_core::events::TraceEvent;
use lava_core::latency::LatencyHistogram;
use lava_core::serve::{
    Micros, PlaceOutcome, PlaceRequest, PlaceResponse, Rejected, ReleaseRequest, VirtualClock,
};
use lava_core::time::Duration;
use lava_core::vm::{Vm, VmId};
use lava_model::adaptive::SwappablePredictor;
use lava_model::predictor::LifetimePredictor;
use lava_sched::cluster::Cluster;
use lava_sched::scheduler::Scheduler;
use lava_sim::arrivals::{AdmissionPolicy, ArrivalGenerator, ServeConfig};
use lava_sim::chaos::{AdaptationSpec, ChaosArrivals, ChaosController, Incident, IncidentPlan};
use lava_sim::experiment::{ExperimentSpec, SpecError};
use lava_sim::fleet::{FleetConfig, Router, SUMMARY_SAMPLE_CAP};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One epoch's slice of the serving run, for SLO-recovery analysis: the
/// chaos bench computes "epochs until p99 re-enters the steady band" over
/// this series.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// The epoch's start instant.
    pub start: Micros,
    /// Requests offered during the epoch (by arrival time).
    pub offered: u64,
    /// Requests placed during the epoch (by decision time).
    pub placed: u64,
    /// Requests that expired during the epoch (by expiry time).
    pub deadline_exceeded: u64,
    /// Latency of every terminal decision landing in the epoch.
    pub latency: LatencyHistogram,
}

/// Aggregate outcome of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests offered (admitted + rejected).
    pub offered: u64,
    /// Requests placed on a host.
    pub placed: u64,
    /// Admitted requests that terminally failed for capacity: the routed
    /// cell had no feasible host and the retry budget was exhausted (or
    /// the retry could not be re-queued).
    pub no_capacity: u64,
    /// Requests shed by the admission policy.
    pub shed: u64,
    /// Requests rejected because the queue was physically full.
    pub queue_full: u64,
    /// Admitted requests whose deadline passed before their decision
    /// could start.
    pub deadline_exceeded: u64,
    /// Failed decisions that were re-queued under a retry budget
    /// (non-terminal; each re-queue counts once).
    pub retried: u64,
    /// Decisions redirected away from their primary cell by the health
    /// layer (breaker failover or brownout routing).
    pub failovers: u64,
    /// Circuit-breaker trips over the run.
    pub breaker_trips: u64,
    /// VM exits applied (internally scheduled ones plus external
    /// releases).
    pub released: u64,
    /// Enqueue-to-decision latency of every admitted request, in
    /// microseconds.
    pub latency: LatencyHistogram,
    /// Deepest the place queue ever was.
    pub queue_high_water: usize,
    /// Largest backlog of pending releases/exits.
    pub release_backlog_high_water: usize,
    /// Rolling hash over the full decision sequence (request id, outcome,
    /// cell/host, decision time — including expiries, retries and
    /// failover placements). Two runs of the same seed must produce the
    /// same digest — the deterministic-replay contract, incidents and all.
    pub decision_digest: u64,
    /// The offered-arrival horizon the run covered.
    pub horizon: Micros,
    /// Virtual time of the last decision.
    pub finished_at: Micros,
    /// Per-epoch series (empty unless [`ServeConfig::epoch`] is set).
    pub epochs: Vec<EpochStats>,
}

impl ServeReport {
    /// Successfully placed requests per offered second — the "useful work"
    /// rate the saturation sweep watches for collapse.
    pub fn goodput_per_sec(&self) -> f64 {
        let secs = self.horizon.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.placed as f64 / secs
        }
    }

    /// Fraction of offered requests rejected before placement (shed or
    /// queue-full).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.shed + self.queue_full) as f64 / self.offered as f64
        }
    }

    /// The terminal-outcome conservation law: every offered request ends
    /// in exactly one of the five terminal buckets. Retries and failovers
    /// are non-terminal and deliberately absent.
    pub fn conservation_holds(&self) -> bool {
        self.offered
            == self.placed + self.no_capacity + self.shed + self.queue_full + self.deadline_exceeded
    }
}

/// Errors a serving run can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The spec has no `serve` section.
    MissingServeConfig,
    /// The spec failed validation.
    Spec(SpecError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::MissingServeConfig => {
                write!(f, "experiment spec has no serve configuration")
            }
            ServeError::Spec(e) => write!(f, "invalid spec: {e}"),
        }
    }
}

impl Error for ServeError {}

impl From<SpecError> for ServeError {
    fn from(e: SpecError) -> ServeError {
        ServeError::Spec(e)
    }
}

/// The request-driven placement engine.
///
/// One `PlacementService` wraps a fleet — a [`Router`] and one
/// [`Scheduler`] per cell — behind a bounded place queue and runs it as a
/// single-server queueing system on a microsecond [`VirtualClock`]:
///
/// 1. **Admission** happens at arrival time: a physically full queue
///    rejects with [`Rejected::QueueFull`]; otherwise the configured
///    [`AdmissionPolicy`] may shed with a retry-after hint.
/// 2. **Service** consumes the queue in FIFO order. A decision starts at
///    `max(server free, request arrival)`, routes the request through the
///    fleet router, asks the routed cell's scheduler for a host
///    ([`Scheduler::schedule_costed`]) and completes after the virtual
///    service time the [`ServiceModel`](lava_sim::arrivals::ServiceModel)
///    assigns to that decision's cost.
/// 3. **Releases** (internally scheduled VM exits, plus any external
///    [`ReleaseRequest`]s) are merged into the same virtual timeline, so
///    capacity frees exactly when it should relative to decisions.
///
/// Everything is a pure function of (config, seed): no wall clock, no
/// thread scheduling, no hashing nondeterminism — the decision digest of
/// a run replays bit-identically.
///
/// With [`PlacementService::attach_incidents`] the engine also executes a
/// deterministic [`IncidentPlan`] on its own clock (outage/degradation
/// starts and recoveries fire between decisions, in virtual-timestamp
/// order), and with [`ServeConfig::breakers`] a [`HealthTracker`] layers
/// per-cell circuit breakers, failover and brownout over the router.
pub struct PlacementService {
    config: ServeConfig,
    clock: VirtualClock,
    /// When the decision server frees up.
    busy_until: Micros,
    /// Virtual service time of the most recent decision (retry-after
    /// estimates).
    last_service: Micros,
    queue: BoundedQueue<Queued>,
    router: Router,
    cells: Vec<Scheduler>,
    /// Per-cell breakers (present when `config.breakers` is set).
    health: Option<HealthTracker>,
    /// Executes runtime incidents against the cells (attached plans only).
    chaos: Option<ChaosController>,
    /// The attached plan's incidents, for target-cell lookup.
    incidents: Vec<Incident>,
    /// Pending incident actions as `(due, phase, index)`; phase 0 = end,
    /// 1 = start, so a recovery due at the same instant as the next
    /// incident's start applies first (plans forbid true overlap).
    incident_events: BinaryHeap<Reverse<(Micros, u8, u32)>>,
    /// Shared by the router and the admission policy (the cells predict
    /// through their policies' own clones).
    predictor: Arc<dyn LifetimePredictor>,
    /// Pending capacity releases: internally scheduled exits of placed
    /// VMs plus external release requests, ordered by due time then VM id.
    releases: BinaryHeap<Reverse<(Micros, VmId)>>,
    /// Retries sitting out their backoff, re-injected into the queue when
    /// due (see [`ParkedRetry`]).
    parked: BinaryHeap<Reverse<ParkedRetry>>,
    parked_seq: u64,
    release_backlog_high_water: usize,
    /// Next summary-refresh boundary (`Micros::MAX`-like sentinel when the
    /// router does not consume summaries).
    next_refresh: Option<Micros>,
    refresh_every: Micros,
    offered: u64,
    placed: u64,
    no_capacity: u64,
    shed: u64,
    queue_full: u64,
    deadline_exceeded: u64,
    retried: u64,
    failovers: u64,
    released: u64,
    latency: LatencyHistogram,
    epochs: Vec<EpochStats>,
    digest: u64,
    finished_at: Micros,
}

/// A queue entry: the (possibly re-queued) request plus its *original*
/// submission time, which terminal latency is measured from — a request
/// that failed over through two retries still reports one end-to-end
/// latency.
#[derive(Debug)]
struct Queued {
    request: PlaceRequest,
    enqueued: Micros,
}

/// A retry waiting out its backoff before re-entering the decision
/// queue. Parked retries live outside the FIFO queue so a delayed retry
/// can never head-of-line block ready requests behind it — the server
/// stays work-conserving through breaker cooldowns. Ordered by due time,
/// with a parking sequence number breaking ties deterministically.
#[derive(Debug)]
struct ParkedRetry {
    due: Micros,
    seq: u64,
    /// The cell whose failure parked the retry (digest attribution if the
    /// queue is full at re-injection).
    cell: usize,
    queued: Queued,
}

impl PartialEq for ParkedRetry {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}

impl Eq for ParkedRetry {}

impl PartialOrd for ParkedRetry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ParkedRetry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Incident-action phases in [`PlacementService::incident_events`].
const INCIDENT_END: u8 = 0;
const INCIDENT_START: u8 = 1;

/// Hard cap on the per-epoch series; later activity is attributed to the
/// final epoch so a pathological drain can't balloon the report.
const MAX_EPOCHS: usize = 1 << 20;

impl PlacementService {
    /// Build a service over pre-built cells.
    ///
    /// `cells` are (pool, policy) pairs as produced by
    /// [`FleetConfig::build_cells`]; `fleet` supplies the router spec and
    /// the summary-refresh cadence; `predictor` is shared by the router
    /// and the admission policy (the per-cell schedulers hold their own
    /// clone of it via their policies).
    /// `seed` feeds the health layer's backoff-jitter streams (ignored
    /// when `config.breakers` is off); pass the workload seed so the whole
    /// run remains a function of one seed.
    pub fn new(
        config: ServeConfig,
        fleet: &FleetConfig,
        cells: Vec<lava_sim::fleet::FleetCell>,
        predictor: Arc<dyn LifetimePredictor>,
        seed: u64,
    ) -> PlacementService {
        let router = Router::new(fleet.router, cells.len());
        let schedulers: Vec<Scheduler> = cells
            .into_iter()
            .map(|cell| Scheduler::new(Cluster::new(cell.pool), cell.policy, predictor.clone()))
            .collect();
        let refresh_every = Micros::from_duration(fleet.summary_refresh);
        // Summary routers get their first snapshot before the first
        // decision, mirroring the batch fleet engine's epoch-start refresh.
        let next_refresh = router.needs_summaries().then_some(Micros::ZERO);
        let queue = BoundedQueue::new(config.queue_bound);
        let health = config
            .breakers
            .map(|breakers| HealthTracker::new(breakers, schedulers.len(), seed));
        PlacementService {
            config,
            clock: VirtualClock::new(),
            busy_until: Micros::ZERO,
            last_service: Micros::ZERO,
            queue,
            router,
            cells: schedulers,
            health,
            chaos: None,
            incidents: Vec::new(),
            incident_events: BinaryHeap::new(),
            predictor,
            releases: BinaryHeap::new(),
            parked: BinaryHeap::new(),
            parked_seq: 0,
            release_backlog_high_water: 0,
            next_refresh,
            refresh_every,
            offered: 0,
            placed: 0,
            no_capacity: 0,
            shed: 0,
            queue_full: 0,
            deadline_exceeded: 0,
            retried: 0,
            failovers: 0,
            released: 0,
            latency: LatencyHistogram::new(),
            epochs: Vec::new(),
            digest: 0,
            finished_at: Micros::ZERO,
        }
    }

    /// Attach an [`IncidentPlan`]: its runtime incidents (cell outages,
    /// predictor degradations) are executed on this service's virtual
    /// clock, bridged from the plan's second-resolution offsets via
    /// [`Micros::from_duration`]. `adaptive` is the predictor hot-swap
    /// seam degradations act through (pass the [`SwappablePredictor`] the
    /// cells were built over, or `None` to ignore degradations).
    ///
    /// Stream-level incidents (storms, drift) are not handled here — wrap
    /// the arrival stream in [`ChaosArrivals`] for those.
    ///
    /// # Errors
    ///
    /// Whatever [`IncidentPlan::validate`] rejects for this fleet size.
    pub fn attach_incidents(
        &mut self,
        plan: &IncidentPlan,
        adaptive: Option<Arc<SwappablePredictor>>,
    ) -> Result<(), SpecError> {
        plan.validate(self.cells.len())?;
        for (index, incident) in plan.incidents.iter().enumerate() {
            if !incident.is_runtime() {
                continue;
            }
            self.incident_events.push(Reverse((
                Micros::from_duration(incident.start_offset()),
                INCIDENT_START,
                index as u32,
            )));
            if let Some(end) = incident.end_offset() {
                self.incident_events.push(Reverse((
                    Micros::from_duration(end),
                    INCIDENT_END,
                    index as u32,
                )));
            }
        }
        self.incidents = plan.incidents.clone();
        self.chaos = Some(ChaosController::new(
            plan,
            &AdaptationSpec::default(),
            0,
            adaptive,
        ));
        Ok(())
    }

    /// Offer one placement request. Returns `Ok(())` if it was admitted to
    /// the queue, or the backpressure signal if it was rejected.
    pub fn offer(&mut self, request: PlaceRequest) -> Result<(), Rejected> {
        let now = self.clock.advance_to(request.submitted);
        self.drain_until(now);
        self.offered += 1;
        if let Some(epoch) = self.epoch_mut(now) {
            epoch.offered += 1;
        }

        if self.queue.len() >= self.queue.bound() {
            self.queue_full += 1;
            return Err(Rejected::QueueFull);
        }
        if let Some(threshold) = self.config.admission.shed_threshold() {
            // Brownout tightens shedding: with most cells tripped the
            // fleet's effective decision capacity is a fraction of
            // nominal, so the backlog worth queueing is too.
            let threshold = if self.health.as_ref().is_some_and(|h| h.in_brownout()) {
                (threshold / 2).max(1)
            } else {
                threshold
            };
            if self.queue.len() >= threshold && !self.spared(&request, now) {
                self.shed += 1;
                // Advisory backoff: the excess backlog times a typical
                // decision, i.e. roughly when the queue drains back below
                // the threshold.
                let excess = (self.queue.len() + 1 - threshold) as u64;
                let typical = self
                    .last_service
                    .as_micros()
                    .max(self.config.service.base_decision_us);
                return Err(Rejected::Shed {
                    retry_after: Micros(excess.saturating_mul(typical)),
                });
            }
        }
        let enqueued = request.submitted;
        self.queue
            .push(Queued { request, enqueued })
            .expect("depth checked against bound above");
        Ok(())
    }

    /// Whether a lifetime-aware policy spares this request from shedding.
    fn spared(&self, request: &PlaceRequest, now: Micros) -> bool {
        match self.config.admission {
            AdmissionPolicy::LifetimeShed { min_predicted, .. } => {
                let at = now.to_sim_time();
                let record = Vm::new(request.vm, request.spec.clone(), at, request.lifetime);
                self.predictor.predict_remaining(&record, at) >= min_predicted
            }
            _ => false,
        }
    }

    /// Submit an external release (VM exit). Releases are merged into the
    /// virtual timeline and applied at their submission time; they must
    /// name a VM this service placed.
    pub fn release(&mut self, release: ReleaseRequest) {
        let now = self.clock.advance_to(release.submitted);
        self.schedule_release(release.submitted.max(now), release.vm);
        self.drain_until(now);
    }

    fn schedule_release(&mut self, due: Micros, vm: VmId) {
        self.releases.push(Reverse((due, vm)));
        self.release_backlog_high_water = self.release_backlog_high_water.max(self.releases.len());
    }

    /// Process every incident action, release, refresh and queued decision
    /// due up to `now`, in virtual-timestamp order.
    fn drain_until(&mut self, now: Micros) {
        loop {
            // Next decision start, if the server could begin one.
            let decision_start = self
                .queue
                .peek()
                .map(|head| self.busy_until.max(head.request.submitted));
            let release_due = self.releases.peek().map(|Reverse((due, _))| *due);
            let retry_due = self.parked.peek().map(|Reverse(parked)| parked.due);
            // The earliest actionable service event; releases break ties
            // so capacity frees before the decision that could use it, and
            // parked retries re-enter the queue before the decision at the
            // same instant picks its next request.
            let next = [decision_start, release_due, retry_due]
                .into_iter()
                .flatten()
                .min();
            // Incident actions fire before any service event due at the
            // same instant (and fire up to `now` even when the service is
            // otherwise idle), so every decision sees the current fault
            // state.
            let bound = next.map_or(now, |n| n.min(now));
            if let Some(&Reverse((due, phase, index))) = self.incident_events.peek() {
                if due <= bound {
                    self.incident_events.pop();
                    self.apply_incident(due, phase, index);
                    continue;
                }
            }
            let Some(next) = next else { break };
            if next > now {
                break;
            }
            if let Some(refresh_at) = self.next_refresh {
                if refresh_at <= next {
                    self.refresh_summaries(refresh_at);
                    continue;
                }
            }
            if release_due.is_some_and(|e| e <= next) {
                let Reverse((due, vm)) = self.releases.pop().expect("peeked above");
                self.apply_release(due, vm);
            } else if retry_due.is_some_and(|d| d <= next) {
                let Reverse(parked) = self.parked.pop().expect("peeked above");
                self.unpark(parked);
            } else {
                let start = next;
                let queued = self.queue.pop().expect("peeked above");
                self.decide(queued, start);
            }
        }
    }

    /// Execute one incident action through the attached controller,
    /// against the incident's target cell (degradations act through the
    /// predictor seam; the scheduler argument is inert for them).
    fn apply_incident(&mut self, at: Micros, phase: u8, index: u32) {
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        let cell = match self.incidents.get(index as usize) {
            Some(Incident::CellOutage { cell, .. }) => *cell as usize,
            _ => 0,
        };
        if phase == INCIDENT_START {
            chaos.start(index, &mut self.cells[cell], at.to_sim_time());
        } else {
            chaos.end(index, &mut self.cells[cell]);
        }
    }

    /// The epoch stats bucket containing `at` (grown on demand), or `None`
    /// when the epoch series is disabled.
    fn epoch_mut(&mut self, at: Micros) -> Option<&mut EpochStats> {
        let len_us = self.config.epoch?.as_micros().max(1);
        let idx = ((at.as_micros() / len_us) as usize).min(MAX_EPOCHS - 1);
        while self.epochs.len() <= idx {
            let start = Micros(self.epochs.len() as u64 * len_us);
            self.epochs.push(EpochStats {
                start,
                offered: 0,
                placed: 0,
                deadline_exceeded: 0,
                latency: LatencyHistogram::new(),
            });
        }
        Some(&mut self.epochs[idx])
    }

    /// Refresh the router's frozen cell summaries at an epoch boundary.
    fn refresh_summaries(&mut self, at: Micros) {
        let sim_now = at.to_sim_time();
        let summaries = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, cell)| cell.cell_summary(CellId(i as u32), sim_now, SUMMARY_SAMPLE_CAP))
            .collect();
        self.router.refresh(summaries);
        self.next_refresh = Some(at + self.refresh_every);
    }

    /// Re-inject a parked retry whose backoff has elapsed. If the queue
    /// filled while the retry waited, it resolves terminally instead —
    /// NoCapacity against the cell whose failure parked it — so parked
    /// work can never be lost or overflow the bound.
    fn unpark(&mut self, parked: ParkedRetry) {
        let ParkedRetry {
            due, cell, queued, ..
        } = parked;
        if let Err(queued) = self.queue.push(queued) {
            let Queued { request, enqueued } = queued;
            self.no_capacity += 1;
            let latency_us = due.as_micros().saturating_sub(enqueued.as_micros()) as f64;
            self.latency.record(latency_us);
            if let Some(epoch) = self.epoch_mut(due) {
                epoch.latency.record(latency_us);
            }
            self.digest = mix64(
                self.digest
                    ^ mix64(request.id.0)
                    ^ mix64(due.as_micros())
                    ^ mix64(2 ^ ((cell as u64) << 8)),
            );
        }
    }

    /// Apply one VM exit: route it to the cell that placed the VM and free
    /// the capacity there.
    fn apply_release(&mut self, due: Micros, vm: VmId) {
        let sim_now = due.to_sim_time();
        let cell = self
            .router
            .route(&TraceEvent::exit(sim_now, vm), &*self.predictor);
        // A release for a VM the cell rejected (or never saw) is a no-op.
        if self.cells[cell].exit(vm, sim_now).is_ok() {
            self.released += 1;
        }
    }

    /// Serve one admitted request: expire, or route (with health-layer
    /// failover), place, and account the decision.
    fn decide(&mut self, queued: Queued, start: Micros) {
        let Queued { request, enqueued } = queued;
        // A request whose deadline passed before its decision could start
        // resolves to DeadlineExceeded without consuming the server — the
        // caller is gone, so burning a decision slot would only delay live
        // requests. The same rule governs the final drain in `finish`: a
        // still-queued request past its deadline is never silently placed
        // late.
        if request.deadline.is_some_and(|deadline| start > deadline) {
            self.deadline_exceeded += 1;
            if let Some(epoch) = self.epoch_mut(start) {
                epoch.deadline_exceeded += 1;
            }
            self.digest =
                mix64(self.digest ^ mix64(request.id.0) ^ mix64(start.as_micros()) ^ mix64(3));
            return;
        }

        let sim_now = start.to_sim_time();
        let event = TraceEvent::create(sim_now, request.vm, request.spec.clone(), request.lifetime);
        // Always consult the router first — its bookkeeping (pins,
        // in-flight CPU, cursor) must advance identically whether or not
        // the health layer overrides the choice.
        let primary = self.router.route(&event, &*self.predictor);
        let mut cell = primary;
        if let Some(health) = self.health.as_mut() {
            if health.in_brownout() {
                // Most summaries describe tripped cells: hash over the
                // closed ones instead of trusting the policy's choice.
                if let Some(target) = health.brownout_target(request.vm.0, start) {
                    cell = target;
                }
            } else if !health.primary_routable(primary, start) {
                if let Some(target) = health.failover_target(primary, start) {
                    cell = target;
                }
            }
            if cell != primary {
                self.failovers += 1;
                self.router.repin(
                    request.vm,
                    primary,
                    cell,
                    request.spec.resources().cpu_milli,
                );
            }
        }

        let record = Vm::new(request.vm, request.spec.clone(), sim_now, request.lifetime);
        let (placed, cost) = self.cells[cell].schedule_costed(record, sim_now);
        let service_time = self.config.service.service_time(cost.hosts, cost.live_vms);
        let decided = start + service_time;
        self.busy_until = decided;
        self.last_service = service_time;
        self.finished_at = decided;

        let outcome = match placed {
            Ok(host) => {
                if let Some(health) = self.health.as_mut() {
                    health.on_success(cell, decided);
                }
                self.placed += 1;
                // Schedule the VM's own exit so capacity frees itself —
                // the internal half of the release stream.
                self.schedule_release(
                    decided + Micros::from_duration(request.lifetime.max(Duration::from_secs(1))),
                    request.vm,
                );
                PlaceOutcome::Placed {
                    cell: CellId(cell as u32),
                    host,
                }
            }
            Err(_) => {
                if let Some(health) = self.health.as_mut() {
                    health.on_failure(cell, decided);
                }
                // Retry budget left and queue space for it: park the
                // request (non-terminal) until the failed cell's breaker
                // backoff — or one typical service time when the breaker
                // is closed/absent — elapses. Parked retries sit outside
                // the FIFO queue and re-enter when due, so the backoff
                // delays only the retry, never the requests behind it.
                if request.retries > 0 && self.queue.len() < self.queue.bound() {
                    let backoff = self
                        .health
                        .as_mut()
                        .and_then(|h| h.retry_backoff(cell, decided))
                        .unwrap_or(service_time)
                        .max(Micros(1));
                    let mut retry = request;
                    retry.retries -= 1;
                    retry.submitted = decided + backoff;
                    self.retried += 1;
                    self.digest = mix64(
                        self.digest
                            ^ mix64(retry.id.0)
                            ^ mix64(decided.as_micros())
                            ^ mix64(4 ^ ((cell as u64) << 8)),
                    );
                    self.parked_seq += 1;
                    self.parked.push(Reverse(ParkedRetry {
                        due: retry.submitted,
                        seq: self.parked_seq,
                        cell,
                        queued: Queued {
                            request: retry,
                            enqueued,
                        },
                    }));
                    return;
                }
                self.no_capacity += 1;
                PlaceOutcome::NoCapacity {
                    cell: CellId(cell as u32),
                }
            }
        };
        let response = PlaceResponse {
            request: request.id,
            vm: request.vm,
            outcome,
            enqueued,
            decided,
        };
        let latency_us = response.latency().as_micros() as f64;
        self.latency.record(latency_us);
        if let Some(epoch) = self.epoch_mut(decided) {
            if matches!(outcome, PlaceOutcome::Placed { .. }) {
                epoch.placed += 1;
            }
            epoch.latency.record(latency_us);
        }
        self.digest = mix64(
            self.digest
                ^ mix64(request.id.0)
                ^ mix64(decided.as_micros())
                ^ match outcome {
                    PlaceOutcome::Placed { cell, host } => {
                        mix64(1 ^ ((cell.0 as u64) << 8) ^ (host.0 << 24))
                    }
                    PlaceOutcome::NoCapacity { cell } => mix64(2 ^ ((cell.0 as u64) << 8)),
                },
        );
    }

    /// Current place-queue depth (admitted, not yet decided).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Pre-size every cell's VM bookkeeping for a run of ids up to
    /// `max_id` with at most `live` concurrently-live VMs (see
    /// [`Cluster::reserve_vm_capacity`]). With this done up front,
    /// steady-state decisions never grow the flat id tables — the
    /// serve-path allocation test pins decisions at zero heap allocs.
    pub fn reserve_vm_capacity(&mut self, max_id: u64, live: usize) {
        for cell in &mut self.cells {
            cell.cluster_mut().reserve_vm_capacity(max_id, live);
        }
    }

    /// Drain every queued decision and pending release, then produce the
    /// run's report. `horizon` is the offered-arrival window goodput is
    /// normalised over.
    pub fn finish(mut self, horizon: Micros) -> ServeReport {
        // Everything still queued gets served — except requests whose
        // deadline has already passed by the time their decision could
        // start, which `decide` resolves to DeadlineExceeded; releases
        // beyond the horizon just unwind bookkeeping.
        self.drain_until(Micros(u64::MAX));
        ServeReport {
            offered: self.offered,
            placed: self.placed,
            no_capacity: self.no_capacity,
            shed: self.shed,
            queue_full: self.queue_full,
            deadline_exceeded: self.deadline_exceeded,
            retried: self.retried,
            failovers: self.failovers,
            breaker_trips: self.health.as_ref().map_or(0, |h| h.trips()),
            released: self.released,
            latency: self.latency,
            queue_high_water: self.queue.high_water(),
            release_backlog_high_water: self.release_backlog_high_water,
            decision_digest: self.digest,
            horizon,
            finished_at: self.finished_at,
            epochs: self.epochs,
        }
    }
}

/// Run the serving scenario an [`ExperimentSpec`] describes: build the
/// fleet (or a single default cell), generate the open-loop arrival
/// stream, offer every request, and report.
///
/// # Errors
///
/// [`ServeError::MissingServeConfig`] when the spec has no `serve`
/// section; [`ServeError::Spec`] when validation fails.
pub fn run_serve(spec: &ExperimentSpec) -> Result<ServeReport, ServeError> {
    spec.validate()?;
    let serve = spec.serve.clone().ok_or(ServeError::MissingServeConfig)?;
    let fleet = spec.fleet.clone().unwrap_or_else(|| FleetConfig::new(1));
    let base_predictor = spec.predictor.build(&spec.workload);
    // The hot-swap seam is interposed only when incidents are scheduled,
    // so incident-free runs stay bit-identical to the pre-chaos engine.
    let chaos_active = !spec.incidents.is_empty();
    let (predictor, swap): (Arc<dyn LifetimePredictor>, Option<Arc<SwappablePredictor>>) =
        if chaos_active {
            let swap = SwappablePredictor::new(base_predictor);
            (swap.clone(), Some(swap))
        } else {
            (base_predictor, None)
        };
    let cells = fleet.build_cells(&spec.workload, |_| {
        (spec.policy.build(predictor.clone()), None)
    });
    let mut service =
        PlacementService::new(serve.clone(), &fleet, cells, predictor, spec.workload.seed);
    if chaos_active {
        service.attach_incidents(&spec.incidents, swap)?;
    }

    let workload = lava_sim::workload::WorkloadGenerator::new(spec.workload.clone());
    let horizon = Micros::from_duration(spec.workload.duration);
    let arrivals = ArrivalGenerator::from_config(workload, &serve, horizon);
    let mut stream = ChaosArrivals::new(arrivals, &spec.incidents, &serve);
    while let Some(request) = stream.next_request() {
        let _ = service.offer(request);
    }
    Ok(service.finish(horizon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::time::Duration;
    use lava_sched::Algorithm;
    use lava_sim::arrivals::ArrivalProcess;
    use lava_sim::experiment::{Experiment, PredictorSpec};
    use lava_sim::RouterSpec;

    fn serve_spec(seed: u64, rate: f64) -> ExperimentSpec {
        Experiment::builder()
            .name("serve-test")
            .hosts(24)
            .duration(Duration::from_mins(30))
            .seed(seed)
            .predictor(PredictorSpec::Oracle)
            .algorithm(Algorithm::Nilas)
            .serve(ServeConfig::at_rate(rate))
            .build()
            .expect("valid spec")
    }

    /// An overload scenario that stays cheap to execute: a deliberately
    /// slow decision server (~500 decisions/s) offered 2× its capacity
    /// for 20 virtual seconds.
    fn overload_spec(seed: u64) -> (ExperimentSpec, ServeConfig) {
        let mut spec = serve_spec(seed, 1000.0);
        spec.workload.duration = Duration::from_secs(20);
        let serve = ServeConfig::at_rate(1000.0).with_service(lava_sim::arrivals::ServiceModel {
            base_decision_us: 2000,
            per_host_ns: 500,
            per_vm_ns: 100,
        });
        (spec, serve)
    }

    #[test]
    fn missing_serve_config_is_an_error() {
        let mut spec = serve_spec(1, 10.0);
        spec.serve = None;
        assert_eq!(
            run_serve(&spec).map(|_| ()),
            Err(ServeError::MissingServeConfig)
        );
    }

    #[test]
    fn invalid_spec_is_surfaced() {
        let mut spec = serve_spec(1, 10.0);
        spec.serve = Some(ServeConfig::at_rate(0.0));
        assert!(matches!(run_serve(&spec), Err(ServeError::Spec(_))));
    }

    #[test]
    fn light_decision_load_keeps_latency_near_service_time() {
        // 5 req/s against a ~4000/s decision server: the queue never
        // builds, so every admitted request's latency is one service time.
        // (The 24-host *pool* does saturate — lifetimes are hours — so
        // NoCapacity decisions are expected physics; the serving tier's
        // own observables are what this test pins.)
        let report = run_serve(&serve_spec(3, 5.0)).expect("runs");
        assert!(report.offered > 1000, "offered {}", report.offered);
        assert_eq!(report.shed, 0);
        assert_eq!(report.queue_full, 0);
        assert_eq!(report.placed + report.no_capacity, report.offered);
        assert!(report.placed > 0);
        assert_eq!(report.latency.count(), report.offered);
        assert!(
            report.latency.quantile(0.5) < 5_000.0,
            "p50 {}",
            report.latency.quantile(0.5)
        );
        assert_eq!(report.shed_rate(), 0.0);
        assert!(report.queue_high_water <= 2);
    }

    #[test]
    fn replay_is_bit_identical() {
        let a = run_serve(&serve_spec(7, 20.0)).expect("runs");
        let b = run_serve(&serve_spec(7, 20.0)).expect("runs");
        assert_eq!(a.decision_digest, b.decision_digest);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.placed, b.placed);
        assert_eq!(a.latency.quantile(0.99), b.latency.quantile(0.99));
        let c = run_serve(&serve_spec(8, 20.0)).expect("runs");
        assert_ne!(a.decision_digest, c.decision_digest);
    }

    #[test]
    fn tiny_queue_signals_queue_full() {
        let (mut spec, serve) = overload_spec(5);
        spec.serve = Some(serve.with_queue_bound(4));
        let report = run_serve(&spec).expect("runs");
        assert!(report.queue_full > 0, "expected QueueFull rejections");
        assert!(report.queue_high_water <= 4);
        assert!(report.shed_rate() > 0.0);
    }

    #[test]
    fn depth_shed_keeps_queue_below_bound() {
        let (mut spec, serve) = overload_spec(5);
        spec.serve = Some(
            serve
                .with_queue_bound(64)
                .with_admission(AdmissionPolicy::DepthShed { shed_threshold: 8 }),
        );
        let report = run_serve(&spec).expect("runs");
        assert!(report.shed > 0, "expected sheds");
        assert_eq!(report.queue_full, 0, "shedding must preempt QueueFull");
        // The shed threshold caps the backlog well below the bound.
        assert!(
            report.queue_high_water <= 9,
            "high water {}",
            report.queue_high_water
        );
    }

    #[test]
    fn lifetime_shed_spares_long_lived_vms() {
        let (mut spec, serve) = overload_spec(5);
        spec.serve = Some(serve.with_queue_bound(64).with_admission(
            AdmissionPolicy::LifetimeShed {
                shed_threshold: 8,
                min_predicted: Duration::from_hours(12),
            },
        ));
        let report = run_serve(&spec).expect("runs");
        assert!(report.shed > 0);
        // Sparing long-lived VMs lets the queue exceed the bare threshold.
        assert!(report.queue_high_water > 8);
    }

    #[test]
    fn fleet_run_routes_across_cells() {
        let mut spec = serve_spec(11, 40.0);
        spec.workload.hosts = 32;
        spec.workload.duration = Duration::from_mins(10);
        spec.fleet = Some(FleetConfig::new(4).with_router(RouterSpec::LifetimeAware));
        let report = run_serve(&spec).expect("runs");
        assert!(report.offered > 1000);
        assert!(report.placed > 0);
        assert_eq!(report.placed + report.no_capacity, report.offered);
    }

    #[test]
    fn overload_with_deadlines_expires_requests() {
        let (mut spec, serve) = overload_spec(5);
        spec.serve = Some(serve.with_deadline(Micros::from_millis(50)));
        let report = run_serve(&spec).expect("runs");
        assert!(
            report.deadline_exceeded > 0,
            "expected expiries in overload"
        );
        assert!(report.conservation_holds());
        // Expiries never consume the decision server: latency covers
        // exactly the decided (terminal) requests.
        assert_eq!(report.latency.count(), report.placed + report.no_capacity);
    }

    #[test]
    fn retry_budget_requeues_capacity_failures() {
        let (mut spec, serve) = overload_spec(5);
        spec.serve = Some(serve.with_retry_budget(2));
        let report = run_serve(&spec).expect("runs");
        assert!(report.retried > 0, "expected retries under saturation");
        assert!(report.conservation_holds());
        // Retries are non-terminal: each request still reports exactly one
        // end-to-end latency.
        assert_eq!(report.latency.count(), report.placed + report.no_capacity);
        let replay = {
            let (mut spec, serve) = overload_spec(5);
            spec.serve = Some(serve.with_retry_budget(2));
            run_serve(&spec).expect("runs")
        };
        assert_eq!(report.decision_digest, replay.decision_digest);
    }

    #[test]
    fn finish_expires_still_queued_requests_past_deadline() {
        use lava_core::resources::Resources;
        use lava_core::serve::RequestId;
        use lava_core::vm::VmSpec;
        use lava_model::predictor::OraclePredictor;
        use lava_sched::baseline::BestFitPolicy;
        use lava_sched::policy::PlacementPolicy;
        use lava_sim::workload::PoolConfig;

        // A 1s-per-decision server offered 5 requests at ~t=0 with 5ms
        // deadlines: the first decision starts on time, the rest are still
        // queued when the run finishes and must resolve DeadlineExceeded —
        // not be silently placed long past their deadline.
        let config = ServeConfig::at_rate(10.0)
            .with_service(lava_sim::arrivals::ServiceModel {
                base_decision_us: 1_000_000,
                per_host_ns: 0,
                per_vm_ns: 0,
            })
            .with_deadline(Micros::from_millis(5));
        let fleet = FleetConfig::new(1);
        let pool = PoolConfig {
            hosts: 4,
            initial_fill_fraction: 0.0,
            ..PoolConfig::default()
        };
        let cells = fleet.build_cells(&pool, |_| {
            (Box::new(BestFitPolicy) as Box<dyn PlacementPolicy>, None)
        });
        let predictor: Arc<dyn LifetimePredictor> = Arc::new(OraclePredictor::new());
        let mut service = PlacementService::new(config, &fleet, cells, predictor, 1);
        for i in 0..5u64 {
            let request = PlaceRequest {
                id: RequestId(i),
                vm: VmId(i),
                spec: VmSpec::builder(Resources::cores_gib(2, 8)).build(),
                lifetime: Duration::from_hours(1),
                submitted: Micros(i),
                deadline: Some(Micros(i) + Micros::from_millis(5)),
                retries: 0,
            };
            service.offer(request).expect("queue has room");
        }
        let report = service.finish(Micros::from_secs(1));
        assert_eq!(report.offered, 5);
        assert_eq!(report.placed, 1);
        assert_eq!(report.deadline_exceeded, 4);
        assert!(report.conservation_holds());
        assert_eq!(report.latency.count(), 1);
    }

    fn outage_spec(
        seed: u64,
        breakers: Option<lava_sim::arrivals::BreakerConfig>,
    ) -> ExperimentSpec {
        use lava_sim::chaos::OutageMode;
        let mut spec = serve_spec(seed, 20.0);
        spec.workload.hosts = 120;
        spec.workload.initial_fill_fraction = 0.0;
        spec.workload.duration = Duration::from_mins(5);
        spec.fleet = Some(FleetConfig::new(4).with_router(RouterSpec::Hash));
        let mut serve = ServeConfig::at_rate(20.0);
        serve.breakers = breakers;
        spec.serve = Some(serve);
        spec.incidents = IncidentPlan {
            seed: 5,
            incidents: vec![Incident::CellOutage {
                cell: 1,
                hosts: None,
                mode: OutageMode::Drain,
                at: Duration::from_secs(60),
                recovery: Some(Duration::from_secs(120)),
            }],
        };
        spec
    }

    #[test]
    fn outage_trips_breakers_and_fails_over() {
        let breakers = lava_sim::arrivals::BreakerConfig::default();
        let plain = run_serve(&outage_spec(21, None)).expect("runs");
        let armed = run_serve(&outage_spec(21, Some(breakers))).expect("runs");
        // Without a health layer the outage burns every cell-1 request.
        assert!(plain.no_capacity > 0, "outage must surface as no_capacity");
        assert_eq!(plain.breaker_trips, 0);
        assert_eq!(plain.failovers, 0);
        // With breakers, cell 1 trips and traffic fails over to live cells.
        assert!(armed.breaker_trips >= 1, "trips {}", armed.breaker_trips);
        assert!(armed.failovers > 0, "failovers {}", armed.failovers);
        assert!(
            armed.placed > plain.placed,
            "failover goodput: armed {} vs plain {}",
            armed.placed,
            plain.placed
        );
        assert!(
            armed.no_capacity < plain.no_capacity,
            "armed {} vs plain {}",
            armed.no_capacity,
            plain.no_capacity
        );
        assert!(plain.conservation_holds());
        assert!(armed.conservation_holds());
        // Bit-replay holds with the incident layer and health layer active.
        let replay = run_serve(&outage_spec(21, Some(breakers))).expect("runs");
        assert_eq!(armed.decision_digest, replay.decision_digest);
    }

    #[test]
    fn arrival_storm_inflates_offered_load() {
        let mut calm_spec = serve_spec(17, 20.0);
        calm_spec.workload.duration = Duration::from_mins(5);
        let calm = run_serve(&calm_spec).expect("runs");
        let mut stormy_spec = calm_spec.clone();
        stormy_spec.incidents = IncidentPlan {
            seed: 9,
            incidents: vec![Incident::ArrivalStorm {
                at: Duration::from_secs(60),
                duration: Duration::from_secs(30),
                vms: 500,
                cores: None,
                lifetime: None,
            }],
        };
        let stormy = run_serve(&stormy_spec).expect("runs");
        assert_eq!(stormy.offered, calm.offered + 500);
        assert!(stormy.conservation_holds());
        let replay = run_serve(&stormy_spec).expect("runs");
        assert_eq!(stormy.decision_digest, replay.decision_digest);
    }

    #[test]
    fn epoch_series_partitions_the_run() {
        let mut spec = serve_spec(19, 20.0);
        spec.workload.duration = Duration::from_mins(2);
        spec.serve = Some(ServeConfig::at_rate(20.0).with_epoch(Micros::from_secs(10)));
        let report = run_serve(&spec).expect("runs");
        assert!(!report.epochs.is_empty());
        assert!(report.epochs.len() <= 14, "epochs {}", report.epochs.len());
        let offered: u64 = report.epochs.iter().map(|e| e.offered).sum();
        assert_eq!(offered, report.offered);
        let placed: u64 = report.epochs.iter().map(|e| e.placed).sum();
        assert_eq!(placed, report.placed);
        for pair in report.epochs.windows(2) {
            assert!(pair[0].start < pair[1].start);
        }
    }

    #[test]
    fn burst_arrivals_run_end_to_end() {
        let mut spec = serve_spec(13, 50.0);
        spec.workload.duration = Duration::from_mins(10);
        spec.serve = Some(
            ServeConfig::at_rate(50.0).with_arrival(ArrivalProcess::Burst {
                period: Duration::from_secs(120),
                burst_len: Duration::from_secs(15),
                amplitude: 6.0,
            }),
        );
        let report = run_serve(&spec).expect("runs");
        assert!(report.offered > 1000);
        assert_eq!(report.placed + report.no_capacity, report.offered);
    }
}
