//! The placement service engine: a virtual-time single-server queueing
//! system over the fleet router and per-cell schedulers.

use crate::queue::BoundedQueue;
use lava_core::cell::CellId;
use lava_core::events::TraceEvent;
use lava_core::latency::LatencyHistogram;
use lava_core::serve::{
    Micros, PlaceOutcome, PlaceRequest, PlaceResponse, Rejected, ReleaseRequest, VirtualClock,
};
use lava_core::time::Duration;
use lava_core::vm::{Vm, VmId};
use lava_model::predictor::LifetimePredictor;
use lava_sched::cluster::Cluster;
use lava_sched::scheduler::Scheduler;
use lava_sim::arrivals::{AdmissionPolicy, ArrivalGenerator, ServeConfig};
use lava_sim::experiment::{ExperimentSpec, SpecError};
use lava_sim::fleet::{FleetConfig, Router, SUMMARY_SAMPLE_CAP};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Aggregate outcome of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests offered (admitted + rejected).
    pub offered: u64,
    /// Requests placed on a host.
    pub placed: u64,
    /// Admitted requests whose routed cell had no feasible host.
    pub no_capacity: u64,
    /// Requests shed by the admission policy.
    pub shed: u64,
    /// Requests rejected because the queue was physically full.
    pub queue_full: u64,
    /// VM exits applied (internally scheduled ones plus external
    /// releases).
    pub released: u64,
    /// Enqueue-to-decision latency of every admitted request, in
    /// microseconds.
    pub latency: LatencyHistogram,
    /// Deepest the place queue ever was.
    pub queue_high_water: usize,
    /// Largest backlog of pending releases/exits.
    pub release_backlog_high_water: usize,
    /// Rolling hash over the full decision sequence (request id, outcome,
    /// cell/host, decision time). Two runs of the same seed must produce
    /// the same digest — the deterministic-replay contract.
    pub decision_digest: u64,
    /// The offered-arrival horizon the run covered.
    pub horizon: Micros,
    /// Virtual time of the last decision.
    pub finished_at: Micros,
}

impl ServeReport {
    /// Successfully placed requests per offered second — the "useful work"
    /// rate the saturation sweep watches for collapse.
    pub fn goodput_per_sec(&self) -> f64 {
        let secs = self.horizon.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.placed as f64 / secs
        }
    }

    /// Fraction of offered requests rejected before placement (shed or
    /// queue-full).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.shed + self.queue_full) as f64 / self.offered as f64
        }
    }
}

/// Errors a serving run can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The spec has no `serve` section.
    MissingServeConfig,
    /// The spec failed validation.
    Spec(SpecError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::MissingServeConfig => {
                write!(f, "experiment spec has no serve configuration")
            }
            ServeError::Spec(e) => write!(f, "invalid spec: {e}"),
        }
    }
}

impl Error for ServeError {}

impl From<SpecError> for ServeError {
    fn from(e: SpecError) -> ServeError {
        ServeError::Spec(e)
    }
}

/// The request-driven placement engine.
///
/// One `PlacementService` wraps a fleet — a [`Router`] and one
/// [`Scheduler`] per cell — behind a bounded place queue and runs it as a
/// single-server queueing system on a microsecond [`VirtualClock`]:
///
/// 1. **Admission** happens at arrival time: a physically full queue
///    rejects with [`Rejected::QueueFull`]; otherwise the configured
///    [`AdmissionPolicy`] may shed with a retry-after hint.
/// 2. **Service** consumes the queue in FIFO order. A decision starts at
///    `max(server free, request arrival)`, routes the request through the
///    fleet router, asks the routed cell's scheduler for a host
///    ([`Scheduler::schedule_costed`]) and completes after the virtual
///    service time the [`ServiceModel`](lava_sim::arrivals::ServiceModel)
///    assigns to that decision's cost.
/// 3. **Releases** (internally scheduled VM exits, plus any external
///    [`ReleaseRequest`]s) are merged into the same virtual timeline, so
///    capacity frees exactly when it should relative to decisions.
///
/// Everything is a pure function of (config, seed): no wall clock, no
/// thread scheduling, no hashing nondeterminism — the decision digest of
/// a run replays bit-identically.
pub struct PlacementService {
    config: ServeConfig,
    clock: VirtualClock,
    /// When the decision server frees up.
    busy_until: Micros,
    /// Virtual service time of the most recent decision (retry-after
    /// estimates).
    last_service: Micros,
    queue: BoundedQueue<PlaceRequest>,
    router: Router,
    cells: Vec<Scheduler>,
    /// Shared by the router and the admission policy (the cells predict
    /// through their policies' own clones).
    predictor: Arc<dyn LifetimePredictor>,
    /// Pending capacity releases: internally scheduled exits of placed
    /// VMs plus external release requests, ordered by due time then VM id.
    releases: BinaryHeap<Reverse<(Micros, VmId)>>,
    release_backlog_high_water: usize,
    /// Next summary-refresh boundary (`Micros::MAX`-like sentinel when the
    /// router does not consume summaries).
    next_refresh: Option<Micros>,
    refresh_every: Micros,
    offered: u64,
    placed: u64,
    no_capacity: u64,
    shed: u64,
    queue_full: u64,
    released: u64,
    latency: LatencyHistogram,
    digest: u64,
    finished_at: Micros,
}

impl PlacementService {
    /// Build a service over pre-built cells.
    ///
    /// `cells` are (pool, policy) pairs as produced by
    /// [`FleetConfig::build_cells`]; `fleet` supplies the router spec and
    /// the summary-refresh cadence; `predictor` is shared by the router
    /// and the admission policy (the per-cell schedulers hold their own
    /// clone of it via their policies).
    pub fn new(
        config: ServeConfig,
        fleet: &FleetConfig,
        cells: Vec<lava_sim::fleet::FleetCell>,
        predictor: Arc<dyn LifetimePredictor>,
    ) -> PlacementService {
        let router = Router::new(fleet.router, cells.len());
        let schedulers: Vec<Scheduler> = cells
            .into_iter()
            .map(|cell| Scheduler::new(Cluster::new(cell.pool), cell.policy, predictor.clone()))
            .collect();
        let refresh_every = Micros::from_duration(fleet.summary_refresh);
        // Summary routers get their first snapshot before the first
        // decision, mirroring the batch fleet engine's epoch-start refresh.
        let next_refresh = router.needs_summaries().then_some(Micros::ZERO);
        let queue = BoundedQueue::new(config.queue_bound);
        PlacementService {
            config,
            clock: VirtualClock::new(),
            busy_until: Micros::ZERO,
            last_service: Micros::ZERO,
            queue,
            router,
            cells: schedulers,
            predictor,
            releases: BinaryHeap::new(),
            release_backlog_high_water: 0,
            next_refresh,
            refresh_every,
            offered: 0,
            placed: 0,
            no_capacity: 0,
            shed: 0,
            queue_full: 0,
            released: 0,
            latency: LatencyHistogram::new(),
            digest: 0,
            finished_at: Micros::ZERO,
        }
    }

    /// Offer one placement request. Returns `Ok(())` if it was admitted to
    /// the queue, or the backpressure signal if it was rejected.
    pub fn offer(&mut self, request: PlaceRequest) -> Result<(), Rejected> {
        let now = self.clock.advance_to(request.submitted);
        self.drain_until(now);
        self.offered += 1;

        if self.queue.len() >= self.queue.bound() {
            self.queue_full += 1;
            return Err(Rejected::QueueFull);
        }
        if let Some(threshold) = self.config.admission.shed_threshold() {
            if self.queue.len() >= threshold && !self.spared(&request, now) {
                self.shed += 1;
                // Advisory backoff: the excess backlog times a typical
                // decision, i.e. roughly when the queue drains back below
                // the threshold.
                let excess = (self.queue.len() + 1 - threshold) as u64;
                let typical = self
                    .last_service
                    .as_micros()
                    .max(self.config.service.base_decision_us);
                return Err(Rejected::Shed {
                    retry_after: Micros(excess.saturating_mul(typical)),
                });
            }
        }
        self.queue
            .push(request)
            .expect("depth checked against bound above");
        Ok(())
    }

    /// Whether a lifetime-aware policy spares this request from shedding.
    fn spared(&self, request: &PlaceRequest, now: Micros) -> bool {
        match self.config.admission {
            AdmissionPolicy::LifetimeShed { min_predicted, .. } => {
                let at = now.to_sim_time();
                let record = Vm::new(request.vm, request.spec.clone(), at, request.lifetime);
                self.predictor.predict_remaining(&record, at) >= min_predicted
            }
            _ => false,
        }
    }

    /// Submit an external release (VM exit). Releases are merged into the
    /// virtual timeline and applied at their submission time; they must
    /// name a VM this service placed.
    pub fn release(&mut self, release: ReleaseRequest) {
        let now = self.clock.advance_to(release.submitted);
        self.schedule_release(release.submitted.max(now), release.vm);
        self.drain_until(now);
    }

    fn schedule_release(&mut self, due: Micros, vm: VmId) {
        self.releases.push(Reverse((due, vm)));
        self.release_backlog_high_water = self.release_backlog_high_water.max(self.releases.len());
    }

    /// Process every release, refresh and queued decision due up to `now`,
    /// in virtual-timestamp order.
    fn drain_until(&mut self, now: Micros) {
        loop {
            // Next decision start, if the server could begin one.
            let decision_start = self
                .queue
                .peek()
                .map(|head| self.busy_until.max(head.submitted));
            let release_due = self.releases.peek().map(|Reverse((due, _))| *due);
            // The earliest actionable event; releases break ties so
            // capacity frees before the decision that could use it.
            let next = match (decision_start, release_due) {
                (None, None) => break,
                (Some(s), None) => s,
                (None, Some(e)) => e,
                (Some(s), Some(e)) => s.min(e),
            };
            if next > now {
                break;
            }
            if let Some(refresh_at) = self.next_refresh {
                if refresh_at <= next {
                    self.refresh_summaries(refresh_at);
                    continue;
                }
            }
            if release_due.is_some_and(|e| e <= next) {
                let Reverse((due, vm)) = self.releases.pop().expect("peeked above");
                self.apply_release(due, vm);
            } else {
                let start = next;
                let request = self.queue.pop().expect("peeked above");
                self.decide(request, start);
            }
        }
    }

    /// Refresh the router's frozen cell summaries at an epoch boundary.
    fn refresh_summaries(&mut self, at: Micros) {
        let sim_now = at.to_sim_time();
        let summaries = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, cell)| cell.cell_summary(CellId(i as u32), sim_now, SUMMARY_SAMPLE_CAP))
            .collect();
        self.router.refresh(summaries);
        self.next_refresh = Some(at + self.refresh_every);
    }

    /// Apply one VM exit: route it to the cell that placed the VM and free
    /// the capacity there.
    fn apply_release(&mut self, due: Micros, vm: VmId) {
        let sim_now = due.to_sim_time();
        let cell = self
            .router
            .route(&TraceEvent::exit(sim_now, vm), &*self.predictor);
        // A release for a VM the cell rejected (or never saw) is a no-op.
        if self.cells[cell].exit(vm, sim_now).is_ok() {
            self.released += 1;
        }
    }

    /// Serve one admitted request: route, place, account the decision.
    fn decide(&mut self, request: PlaceRequest, start: Micros) {
        let sim_now = start.to_sim_time();
        let event = TraceEvent::create(sim_now, request.vm, request.spec.clone(), request.lifetime);
        let cell = self.router.route(&event, &*self.predictor);
        let record = Vm::new(request.vm, request.spec.clone(), sim_now, request.lifetime);
        let (placed, cost) = self.cells[cell].schedule_costed(record, sim_now);
        let service_time = self.config.service.service_time(cost.hosts, cost.live_vms);
        let decided = start + service_time;
        self.busy_until = decided;
        self.last_service = service_time;
        self.finished_at = decided;

        let outcome = match placed {
            Ok(host) => {
                self.placed += 1;
                // Schedule the VM's own exit so capacity frees itself —
                // the internal half of the release stream.
                self.schedule_release(
                    decided + Micros::from_duration(request.lifetime.max(Duration::from_secs(1))),
                    request.vm,
                );
                PlaceOutcome::Placed {
                    cell: CellId(cell as u32),
                    host,
                }
            }
            Err(_) => {
                self.no_capacity += 1;
                PlaceOutcome::NoCapacity {
                    cell: CellId(cell as u32),
                }
            }
        };
        let response = PlaceResponse {
            request: request.id,
            vm: request.vm,
            outcome,
            enqueued: request.submitted,
            decided,
        };
        self.latency.record(response.latency().as_micros() as f64);
        self.digest = mix64(
            self.digest
                ^ mix64(request.id.0)
                ^ mix64(decided.as_micros())
                ^ match outcome {
                    PlaceOutcome::Placed { cell, host } => {
                        mix64(1 ^ ((cell.0 as u64) << 8) ^ (host.0 << 24))
                    }
                    PlaceOutcome::NoCapacity { cell } => mix64(2 ^ ((cell.0 as u64) << 8)),
                },
        );
    }

    /// Current place-queue depth (admitted, not yet decided).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Drain every queued decision and pending release, then produce the
    /// run's report. `horizon` is the offered-arrival window goodput is
    /// normalised over.
    pub fn finish(mut self, horizon: Micros) -> ServeReport {
        // Everything still queued gets served; releases beyond the horizon
        // just unwind bookkeeping.
        self.drain_until(Micros(u64::MAX));
        ServeReport {
            offered: self.offered,
            placed: self.placed,
            no_capacity: self.no_capacity,
            shed: self.shed,
            queue_full: self.queue_full,
            released: self.released,
            latency: self.latency,
            queue_high_water: self.queue.high_water(),
            release_backlog_high_water: self.release_backlog_high_water,
            decision_digest: self.digest,
            horizon,
            finished_at: self.finished_at,
        }
    }
}

/// Run the serving scenario an [`ExperimentSpec`] describes: build the
/// fleet (or a single default cell), generate the open-loop arrival
/// stream, offer every request, and report.
///
/// # Errors
///
/// [`ServeError::MissingServeConfig`] when the spec has no `serve`
/// section; [`ServeError::Spec`] when validation fails.
pub fn run_serve(spec: &ExperimentSpec) -> Result<ServeReport, ServeError> {
    spec.validate()?;
    let serve = spec.serve.clone().ok_or(ServeError::MissingServeConfig)?;
    let fleet = spec.fleet.clone().unwrap_or_else(|| FleetConfig::new(1));
    let predictor = spec.predictor.build(&spec.workload);
    let cells = fleet.build_cells(&spec.workload, |_| {
        (spec.policy.build(predictor.clone()), None)
    });
    let mut service = PlacementService::new(serve.clone(), &fleet, cells, predictor);

    let workload = lava_sim::workload::WorkloadGenerator::new(spec.workload.clone());
    let horizon = Micros::from_duration(spec.workload.duration);
    let mut arrivals = ArrivalGenerator::from_config(workload, &serve, horizon);
    while let Some(request) = arrivals.next_request() {
        let _ = service.offer(request);
    }
    Ok(service.finish(horizon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lava_core::time::Duration;
    use lava_sched::Algorithm;
    use lava_sim::arrivals::ArrivalProcess;
    use lava_sim::experiment::{Experiment, PredictorSpec};
    use lava_sim::RouterSpec;

    fn serve_spec(seed: u64, rate: f64) -> ExperimentSpec {
        Experiment::builder()
            .name("serve-test")
            .hosts(24)
            .duration(Duration::from_mins(30))
            .seed(seed)
            .predictor(PredictorSpec::Oracle)
            .algorithm(Algorithm::Nilas)
            .serve(ServeConfig::at_rate(rate))
            .build()
            .expect("valid spec")
    }

    /// An overload scenario that stays cheap to execute: a deliberately
    /// slow decision server (~500 decisions/s) offered 2× its capacity
    /// for 20 virtual seconds.
    fn overload_spec(seed: u64) -> (ExperimentSpec, ServeConfig) {
        let mut spec = serve_spec(seed, 1000.0);
        spec.workload.duration = Duration::from_secs(20);
        let serve = ServeConfig::at_rate(1000.0).with_service(lava_sim::arrivals::ServiceModel {
            base_decision_us: 2000,
            per_host_ns: 500,
            per_vm_ns: 100,
        });
        (spec, serve)
    }

    #[test]
    fn missing_serve_config_is_an_error() {
        let mut spec = serve_spec(1, 10.0);
        spec.serve = None;
        assert_eq!(
            run_serve(&spec).map(|_| ()),
            Err(ServeError::MissingServeConfig)
        );
    }

    #[test]
    fn invalid_spec_is_surfaced() {
        let mut spec = serve_spec(1, 10.0);
        spec.serve = Some(ServeConfig::at_rate(0.0));
        assert!(matches!(run_serve(&spec), Err(ServeError::Spec(_))));
    }

    #[test]
    fn light_decision_load_keeps_latency_near_service_time() {
        // 5 req/s against a ~4000/s decision server: the queue never
        // builds, so every admitted request's latency is one service time.
        // (The 24-host *pool* does saturate — lifetimes are hours — so
        // NoCapacity decisions are expected physics; the serving tier's
        // own observables are what this test pins.)
        let report = run_serve(&serve_spec(3, 5.0)).expect("runs");
        assert!(report.offered > 1000, "offered {}", report.offered);
        assert_eq!(report.shed, 0);
        assert_eq!(report.queue_full, 0);
        assert_eq!(report.placed + report.no_capacity, report.offered);
        assert!(report.placed > 0);
        assert_eq!(report.latency.count(), report.offered);
        assert!(
            report.latency.quantile(0.5) < 5_000.0,
            "p50 {}",
            report.latency.quantile(0.5)
        );
        assert_eq!(report.shed_rate(), 0.0);
        assert!(report.queue_high_water <= 2);
    }

    #[test]
    fn replay_is_bit_identical() {
        let a = run_serve(&serve_spec(7, 20.0)).expect("runs");
        let b = run_serve(&serve_spec(7, 20.0)).expect("runs");
        assert_eq!(a.decision_digest, b.decision_digest);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.placed, b.placed);
        assert_eq!(a.latency.quantile(0.99), b.latency.quantile(0.99));
        let c = run_serve(&serve_spec(8, 20.0)).expect("runs");
        assert_ne!(a.decision_digest, c.decision_digest);
    }

    #[test]
    fn tiny_queue_signals_queue_full() {
        let (mut spec, serve) = overload_spec(5);
        spec.serve = Some(serve.with_queue_bound(4));
        let report = run_serve(&spec).expect("runs");
        assert!(report.queue_full > 0, "expected QueueFull rejections");
        assert!(report.queue_high_water <= 4);
        assert!(report.shed_rate() > 0.0);
    }

    #[test]
    fn depth_shed_keeps_queue_below_bound() {
        let (mut spec, serve) = overload_spec(5);
        spec.serve = Some(
            serve
                .with_queue_bound(64)
                .with_admission(AdmissionPolicy::DepthShed { shed_threshold: 8 }),
        );
        let report = run_serve(&spec).expect("runs");
        assert!(report.shed > 0, "expected sheds");
        assert_eq!(report.queue_full, 0, "shedding must preempt QueueFull");
        // The shed threshold caps the backlog well below the bound.
        assert!(
            report.queue_high_water <= 9,
            "high water {}",
            report.queue_high_water
        );
    }

    #[test]
    fn lifetime_shed_spares_long_lived_vms() {
        let (mut spec, serve) = overload_spec(5);
        spec.serve = Some(serve.with_queue_bound(64).with_admission(
            AdmissionPolicy::LifetimeShed {
                shed_threshold: 8,
                min_predicted: Duration::from_hours(12),
            },
        ));
        let report = run_serve(&spec).expect("runs");
        assert!(report.shed > 0);
        // Sparing long-lived VMs lets the queue exceed the bare threshold.
        assert!(report.queue_high_water > 8);
    }

    #[test]
    fn fleet_run_routes_across_cells() {
        let mut spec = serve_spec(11, 40.0);
        spec.workload.hosts = 32;
        spec.workload.duration = Duration::from_mins(10);
        spec.fleet = Some(FleetConfig::new(4).with_router(RouterSpec::LifetimeAware));
        let report = run_serve(&spec).expect("runs");
        assert!(report.offered > 1000);
        assert!(report.placed > 0);
        assert_eq!(report.placed + report.no_capacity, report.offered);
    }

    #[test]
    fn burst_arrivals_run_end_to_end() {
        let mut spec = serve_spec(13, 50.0);
        spec.workload.duration = Duration::from_mins(10);
        spec.serve = Some(
            ServeConfig::at_rate(50.0).with_arrival(ArrivalProcess::Burst {
                period: Duration::from_secs(120),
                burst_len: Duration::from_secs(15),
                amplitude: 6.0,
            }),
        );
        let report = run_serve(&spec).expect("runs");
        assert!(report.offered > 1000);
        assert_eq!(report.placed + report.no_capacity, report.offered);
    }
}
