//! Proof that steady-state serving decisions are allocation-free.
//!
//! Same counting-allocator technique as `lava-sim/tests/drive_alloc.rs`,
//! pointed at the online path: [`PlacementService::offer`] → queue →
//! route (hash) → `Scheduler::schedule_costed` → SoA state mutation →
//! internal release scheduling → latency histogram. After
//! [`PlacementService::reserve_vm_capacity`] pre-sizes the per-cell
//! arenas and the early offers grow every queue/heap to steady capacity,
//! a window of hundreds of offer-decide-release cycles must not touch
//! the allocator at all.
//!
//! Scenario constraints mirror the drive test: breakers, epochs,
//! deadlines and retries off (their bookkeeping is epoch/series-shaped,
//! not hot-path); concurrently live VMs held in 1..=11 so every
//! `BTreeMap` on the placement path stays a single root node. One
//! `#[test]` per file — the counter is process-global.

use lava_core::host::HostSpec;
use lava_core::pool::{Pool, PoolId};
use lava_core::resources::Resources;
use lava_core::serve::{Micros, PlaceRequest, RequestId};
use lava_core::time::Duration;
use lava_core::vm::{VmId, VmSpec};
use lava_model::predictor::OraclePredictor;
use lava_sched::baseline::BestFitPolicy;
use lava_serve::PlacementService;
use lava_sim::arrivals::ServeConfig;
use lava_sim::fleet::{FleetCell, FleetConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts every allocator call that can return fresh memory; frees are
/// ignored (releasing is fine in steady state, acquiring is not).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_serve_decisions_perform_zero_allocations() {
    const OFFERS: u64 = 400;
    /// Offer milestones at which the allocation count is snapshotted;
    /// the first sits past every buffer's warm-up growth.
    const MILESTONES: [u64; 4] = [200, 260, 320, 380];

    // One request per virtual second, each VM living five seconds: ~5
    // concurrently live VMs against 6 hosts × 16 cores — no capacity
    // failures, exit-cache/free-index root nodes never split and never
    // empty.
    let gap = Micros(Micros::PER_SEC);
    let lifetime = Duration::from_secs(5);
    let spec = VmSpec::builder(Resources::cores_gib(2, 8)).build();

    let pool = Pool::with_uniform_hosts(PoolId(0), 6, HostSpec::new(Resources::cores_gib(16, 64)));
    let cells = vec![FleetCell {
        pool,
        policy: Box::new(BestFitPolicy::new()),
        deferred_policy: None,
    }];
    let config = ServeConfig::at_rate(1.0);
    let mut service = PlacementService::new(
        config,
        &FleetConfig::new(1),
        cells,
        Arc::new(OraclePredictor::new()),
        7,
    );
    service.reserve_vm_capacity(OFFERS + 1, 16);

    let mut counts: Vec<u64> = Vec::with_capacity(MILESTONES.len());
    for i in 0..OFFERS {
        if MILESTONES.contains(&i) {
            counts.push(ALLOCATIONS.load(Ordering::Relaxed));
        }
        let submitted = Micros(gap.0 * i);
        let request = PlaceRequest {
            id: RequestId(i),
            vm: VmId(i),
            spec: spec.clone(),
            lifetime,
            submitted,
            deadline: None,
            retries: 0,
        };
        service.offer(request).expect("uncontended offer admitted");
    }

    assert_eq!(counts.len(), MILESTONES.len());
    // The harness's own threads may allocate at any moment, so require at
    // least one fully clean window rather than all of them. An actual
    // per-decision allocation dirties every window.
    let deltas: Vec<u64> = counts.windows(2).map(|w| w[1] - w[0]).collect();
    assert!(
        deltas.contains(&0),
        "every steady-state window between offers {MILESTONES:?} saw allocations \
         ({deltas:?}): the decision hot path is no longer allocation-free"
    );

    let report = service.finish(Micros(gap.0 * (OFFERS + 10)));
    assert!(report.conservation_holds());
    assert_eq!(report.placed, OFFERS, "every offer must end in a placement");
}
