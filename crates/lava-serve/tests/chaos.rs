//! Property tests for the fault-tolerant serving tier: 64 chaos-enabled
//! configurations, each asserting (a) the decision digest is bit-identical
//! across reruns, (b) it is bit-identical when the run executes inside
//! worker-pool threads at different pool widths (thread scheduling can
//! never leak into results), and (c) terminal-outcome conservation holds
//! over the extended outcome set (placed + no_capacity + shed +
//! queue_full + deadline_exceeded == offered) with retries and failovers
//! in play.

use lava_core::serve::Micros;
use lava_core::time::Duration;
use lava_sched::Algorithm;
use lava_serve::{run_serve, ServeReport};
use lava_sim::arrivals::{BreakerConfig, ServeConfig, ServiceModel};
use lava_sim::chaos::{DegradedPredictor, Incident, IncidentPlan, OutageMode};
use lava_sim::experiment::{Experiment, ExperimentSpec, PredictorSpec};
use lava_sim::{FleetConfig, RouterSpec, WorkerPool};
use std::sync::Mutex;

const SEEDS: u64 = 16;
const VARIANTS: u64 = 4;

/// A deliberately slow decision server (~500 decisions/s) offered ~2× its
/// capacity for 20 virtual seconds, under one of four chaos shapes.
fn chaos_spec(seed: u64, variant: u64) -> ExperimentSpec {
    let slow = ServiceModel {
        base_decision_us: 2000,
        per_host_ns: 500,
        per_vm_ns: 100,
    };
    let serve = match variant {
        // Breakers + deadline + retries: expiry and re-queue paths.
        0 => ServeConfig::at_rate(1000.0)
            .with_service(slow)
            .with_deadline(Micros::from_millis(80))
            .with_retry_budget(2)
            .with_breakers(BreakerConfig::default()),
        // Breakers + epoch series, storm-heavy load.
        1 => ServeConfig::at_rate(800.0)
            .with_service(slow)
            .with_breakers(BreakerConfig::default())
            .with_epoch(Micros::from_secs(1)),
        // No health layer at all: the pre-fault-tolerance engine under the
        // same incidents.
        2 => ServeConfig::at_rate(1000.0)
            .with_service(slow)
            .with_deadline(Micros::from_millis(60)),
        // Aggressive breakers + retries, degradation + drift incidents.
        _ => ServeConfig::at_rate(900.0)
            .with_service(slow)
            .with_retry_budget(3)
            .with_breakers(BreakerConfig {
                failure_threshold: 3,
                base_backoff_us: 10_000,
                max_backoff_us: 200_000,
                jitter: 0.2,
            }),
    };
    let incidents = match variant {
        0 | 1 => vec![
            Incident::CellOutage {
                cell: 1,
                hosts: None,
                mode: if variant == 0 {
                    OutageMode::Drain
                } else {
                    OutageMode::HardKill
                },
                at: Duration::from_secs(5),
                recovery: Some(Duration::from_secs(8)),
            },
            Incident::ArrivalStorm {
                at: Duration::from_secs(6),
                duration: Duration::from_secs(4),
                vms: 200,
                cores: None,
                lifetime: Some(Duration::from_secs(120)),
            },
        ],
        2 => vec![Incident::CellOutage {
            cell: 0,
            hosts: Some(4),
            mode: OutageMode::Drain,
            at: Duration::from_secs(4),
            recovery: Some(Duration::from_secs(10)),
        }],
        _ => vec![
            Incident::PredictorDegradation {
                degraded: DegradedPredictor::Stale,
                at: Duration::from_secs(3),
                recovery: Some(Duration::from_secs(9)),
            },
            Incident::DriftShift {
                at: Duration::from_secs(10),
                lifetime_scale: 0.5,
            },
        ],
    };
    let mut spec = Experiment::builder()
        .name("serve-chaos-prop")
        .hosts(32)
        .duration(Duration::from_secs(20))
        .seed(seed)
        .predictor(PredictorSpec::Oracle)
        .algorithm(Algorithm::Nilas)
        .serve(serve)
        .build()
        .expect("valid spec");
    spec.fleet = Some(FleetConfig::new(4).with_router(RouterSpec::Hash));
    spec.incidents = IncidentPlan {
        seed: seed ^ 0xc4a05,
        incidents,
    };
    spec.validate().expect("chaos spec validates");
    spec
}

fn run_case(seed: u64, variant: u64) -> ServeReport {
    run_serve(&chaos_spec(seed, variant)).expect("chaos run succeeds")
}

#[test]
fn chaos_digests_replay_across_reruns_and_conservation_holds() {
    let mut digests = Vec::new();
    for seed in 0..SEEDS {
        for variant in 0..VARIANTS {
            let first = run_case(seed, variant);
            let second = run_case(seed, variant);
            assert_eq!(
                first.decision_digest, second.decision_digest,
                "seed {seed} variant {variant}: rerun digest drift"
            );
            assert_eq!(first.offered, second.offered);
            assert_eq!(first.placed, second.placed);
            assert_eq!(first.retried, second.retried);
            assert_eq!(first.failovers, second.failovers);
            assert!(
                first.conservation_holds(),
                "seed {seed} variant {variant}: {} != {} + {} + {} + {} + {}",
                first.offered,
                first.placed,
                first.no_capacity,
                first.shed,
                first.queue_full,
                first.deadline_exceeded
            );
            // Terminal decisions — and only those — report a latency.
            assert_eq!(first.latency.count(), first.placed + first.no_capacity);
            digests.push(first.decision_digest);
        }
    }
    // The 64 cases are genuinely distinct scenarios, not one digest
    // repeated: virtually all must differ.
    digests.sort_unstable();
    digests.dedup();
    assert!(
        digests.len() as u64 >= SEEDS * VARIANTS - 2,
        "digest collisions: {} distinct of {}",
        digests.len(),
        SEEDS * VARIANTS
    );
}

#[test]
fn chaos_digests_are_identical_across_worker_thread_counts() {
    // Sample one seed per variant (the rerun test above covers the full
    // grid serially); here the same case runs inside worker pools of
    // width 2 and 4 plus the calling thread, and every execution context
    // must produce the identical digest.
    for variant in 0..VARIANTS {
        let seed = 41 + variant;
        let serial = run_case(seed, variant);
        for workers in [2usize, 4] {
            let pool = WorkerPool::new(workers);
            let digests: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
            pool.run_indexed(workers * 2, |i| {
                let report = run_case(seed, variant);
                digests
                    .lock()
                    .unwrap()
                    .push((i as u64, report.decision_digest));
            });
            let digests = digests.into_inner().unwrap();
            assert_eq!(digests.len(), workers * 2);
            for (job, digest) in digests {
                assert_eq!(
                    digest, serial.decision_digest,
                    "variant {variant}, {workers}-worker pool, job {job}: \
                     digest diverged from the serial run"
                );
            }
        }
    }
}

#[test]
fn retry_and_expiry_paths_are_exercised_by_the_grid() {
    // The conservation law is only interesting if the extended outcomes
    // actually occur: across the grid, deadline expiries and retries must
    // both show up (variant 0 is built to produce them).
    let mut saw_deadline_exceeded = false;
    let mut saw_retries = false;
    let mut saw_failovers = false;
    for seed in 0..4 {
        let report = run_case(seed, 0);
        saw_deadline_exceeded |= report.deadline_exceeded > 0;
        saw_retries |= report.retried > 0;
        saw_failovers |= report.failovers > 0;
    }
    assert!(saw_deadline_exceeded, "no deadline expiries in variant 0");
    assert!(saw_retries, "no retries in variant 0");
    assert!(saw_failovers, "no failovers in variant 0");
}
