//! Vendored offline stand-in for `criterion`.
//!
//! Provides the macro/API surface the repository's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`) backed by a small
//! wall-clock harness: each benchmark is auto-calibrated to a target
//! measurement time, sampled several times, and reported as the median
//! nanoseconds per iteration on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Result of one benchmark, as reported on stdout.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Full benchmark id (`group/function`).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Minimum nanoseconds per iteration across samples.
    pub min_ns: f64,
    /// Maximum nanoseconds per iteration across samples.
    pub max_ns: f64,
}

/// The benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    sample_count: usize,
    reports: Vec<BenchReport>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(300),
            sample_count: 7,
            reports: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the per-benchmark target measurement time.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Reports collected so far (used by the bench binaries to compute
    /// speedup ratios).
    pub fn reports(&self) -> &[BenchReport] {
        &self.reports
    }

    fn run_bench<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            sample_count: self.sample_count,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples_ns;
        if samples.is_empty() {
            return;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let report = BenchReport {
            id: id.clone(),
            median_ns: median,
            min_ns: samples[0],
            max_ns: samples[samples.len() - 1],
        };
        println!(
            "{:<50} median {:>12.1} ns/iter   (min {:.1}, max {:.1})",
            report.id, report.median_ns, report.min_ns, report.max_ns
        );
        self.reports.push(report);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_bench(id, f);
        self
    }

    /// Benchmark a closure that receives `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        self.criterion.run_bench(id, |b| f(b, input));
        self
    }

    /// Set the group's target measurement time.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Accepted for API compatibility; the vendored harness sizes samples
    /// by time, not count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from just a parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    measurement_time: Duration,
    sample_count: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, calibrating the iteration count so each sample runs
    /// for roughly `measurement_time / sample_count`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count that takes at
        // least ~1/sample_count of the measurement budget.
        let target = self.measurement_time.as_secs_f64() / self.sample_count as f64;
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= target.min(0.05) || iters >= (1 << 30) {
                break elapsed / iters as f64;
            }
            let growth = if elapsed <= 0.0 {
                100.0
            } else {
                (target / elapsed).clamp(2.0, 100.0)
            };
            iters = ((iters as f64) * growth).ceil() as u64;
        };
        let sample_iters = ((target / per_iter.max(1e-9)).ceil() as u64).max(1);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..sample_iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns.push(elapsed * 1e9 / sample_iters as f64);
        }
    }
}

/// Opaque value barrier, re-exported for compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
