//! Vendored offline stand-in for the `serde` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace ships a minimal, self-contained replacement that covers
//! exactly the API surface the LAVA crates use: `#[derive(Serialize,
//! Deserialize)]` plus value-tree conversion consumed by the vendored
//! `serde_json`. The derive macros live in `serde_derive` (re-exported
//! here, like the real crate's `derive` feature).
//!
//! Serialization is defined in terms of an in-memory [`Value`] tree.
//! Round-tripping through the vendored `serde_json` is lossless for the
//! shapes the repository uses; byte-for-byte compatibility with upstream
//! serde_json output is a non-goal (maps serialize as arrays of pairs).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// An in-memory serialization tree, the target of [`Serialize`] and the
/// source of [`Deserialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered set of key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Create an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> DeError {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// Look up a field of an object by name.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected object with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Index into an array.
    pub fn item(&self, idx: usize) -> Result<&Value, DeError> {
        match self {
            Value::Array(items) => items
                .get(idx)
                .ok_or_else(|| DeError(format!("missing array element {idx}"))),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }

    /// The elements of an array.
    pub fn items(&self) -> Result<&[Value], DeError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

/// Convert a value into the serialization tree.
pub trait Serialize {
    /// Build the [`Value`] tree for `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild a value from the serialization tree.
pub trait Deserialize: Sized {
    /// Parse `self` out of a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls ------------------------------------------------------

fn as_u64(v: &Value) -> Result<u64, DeError> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => Ok(*f as u64),
        other => Err(DeError(format!("expected unsigned integer, got {other:?}"))),
    }
}

fn as_i64(v: &Value) -> Result<i64, DeError> {
    match v {
        Value::I64(n) => Ok(*n),
        Value::U64(n) if *n <= i64::MAX as u64 => Ok(*n as i64),
        Value::F64(f) if f.fract() == 0.0 => Ok(*f as i64),
        other => Err(DeError(format!("expected integer, got {other:?}"))),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = as_u64(v)?;
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = as_i64(v)?;
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null (JSON limitation).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.items()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($($t::from_value(v.item($n)?)?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// Maps and sets serialize as arrays (of pairs) so that non-string keys
// round-trip without a string conversion.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.items()?
            .iter()
            .map(|pair| Ok((K::from_value(pair.item(0)?)?, V::from_value(pair.item(1)?)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.items()?
            .iter()
            .map(|pair| Ok((K::from_value(pair.item(0)?)?, V::from_value(pair.item(1)?)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.items()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.items()?.iter().map(T::from_value).collect()
    }
}
