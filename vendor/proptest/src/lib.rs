//! Vendored offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this repository uses: the
//! `proptest!` macro over `arg in strategy` bindings, `prop_assert!` /
//! `prop_assert_eq!`, range and tuple strategies, `prop_map`, and
//! `proptest::collection::vec`. Cases are generated from a deterministic
//! per-test seed; there is no shrinking — the failure report includes the
//! case index and the assertion text instead.

use std::ops::{Range, RangeInclusive};

/// Number of random cases each `proptest!` test runs.
pub const NUM_CASES: u32 = 64;

/// A failed test case (the `Err` payload of a case closure).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Deterministic random source for case generation (xoshiro-style).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every test gets a stable stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut state: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % width;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let frac = rng.unit_f64() as $t;
                let sample = self.start + frac * (self.end - self.start);
                if sample >= self.end { self.start } else { sample }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let frac = rng.unit_f64() as $t;
                start + frac * (end - start)
            }
        }
    )*};
}
impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy generating a `Vec` of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.min < size.max, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The imports `use proptest::prelude::*` is expected to provide.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Define tests that run a body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
        $(#[$meta])*
        fn $name() {
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..$crate::NUM_CASES {
                let ($($arg,)+) = $crate::Strategy::generate(&__strategies, &mut __rng);
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest `{}` case {} failed: {}", stringify!($name), __case, e.0);
                }
            }
        }
        )+
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(a in 0u64..10, b in -5i32..5, f in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn mapped_strategy(r in (0u64..5, 1u64..3).prop_map(|(a, b)| a * b)) {
            prop_assert!(r <= 8);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
