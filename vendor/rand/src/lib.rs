//! Vendored offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this repository uses:
//! [`RngCore`], [`SeedableRng`], [`Rng::gen_range`] / [`Rng::gen_bool`],
//! and [`seq::SliceRandom::shuffle`]. Streams are deterministic for a
//! given seed but are NOT bit-compatible with upstream rand.

/// Low-level uniform random word generation.
pub trait RngCore {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits of precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range sampling (the subset of `rand::distributions` the repo needs).
pub mod distributions {
    use super::{unit_f64, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draw one uniform sample.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let width = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = (rng.next_u64() as u128) % width;
                    (self.start as u128 + draw) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range in gen_range");
                    let width = (end as u128).wrapping_sub(start as u128) + 1;
                    let draw = (rng.next_u64() as u128) % width;
                    (start as u128 + draw) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % width;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range in gen_range");
                    let width = (end as i128 - start as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % width;
                    (start as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    impl_signed_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let frac = unit_f64(rng.next_u64()) as $t;
                    let sample = self.start + frac * (self.end - self.start);
                    // Guard against rounding up to the excluded endpoint.
                    if sample >= self.end { self.start } else { sample }
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    let frac = unit_f64(rng.next_u64()) as $t;
                    start + frac * (end - start)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);
}

/// Sequence-related helpers (the subset of `rand::seq` the repo needs).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let a: u64 = rng.gen_range(5..10);
            assert!((5..10).contains(&a));
            let b: usize = rng.gen_range(0..=3);
            assert!(b <= 3);
            let c: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&c));
            let d: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut rng = Lcg(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
