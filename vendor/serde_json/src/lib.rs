//! Vendored offline stand-in for `serde_json`.
//!
//! Serializes the vendored `serde::Value` tree to JSON text and parses it
//! back. Lossless for everything the vendored derive produces; note that
//! maps/sets serialize as arrays of pairs (see the vendored `serde` docs).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value to JSON text (same as [`to_string`]; the vendored
/// writer does not pretty-print).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that
                // round-trips, and always includes a `.` or exponent.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected character {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::msg(format!("invalid number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::msg(format!("invalid number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::msg(format!("invalid number `{text}`: {e}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let remaining = &self.bytes[self.pos..];
            let Some(&b) = remaining.first() else {
                return Err(Error::msg("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::msg)?,
                                16,
                            )
                            .map_err(Error::msg)?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Copy a full UTF-8 scalar.
                    let s = std::str::from_utf8(remaining).map_err(Error::msg)?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>("true").unwrap());
        let s: String = from_str("\"a\\nb\\u0041\"").unwrap();
        assert_eq!(s, "a\nbA");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);

        let opt: Option<u64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn float_roundtrip_shortest() {
        let x = 0.1f64 + 0.2f64;
        let json = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&json).unwrap(), x);
    }
}
