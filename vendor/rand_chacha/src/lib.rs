//! Vendored offline stand-in for `rand_chacha`.
//!
//! A real ChaCha8 keystream generator implementing the vendored `rand`
//! traits. Deterministic per seed; not bit-compatible with upstream
//! `rand_chacha` (the `seed_from_u64` key-expansion differs).

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means exhausted.
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Create a generator from a 32-byte key (counter and nonce zeroed).
    pub fn from_key(key: [u8; 32]) -> ChaCha8Rng {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Two rounds per loop: one column round, one diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, word) in working.iter().enumerate() {
            self.buffer[i] = word.wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buffer[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        // SplitMix64 key expansion.
        let mut x = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // 64_000 bits; expect ~32_000 ones.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }
}
