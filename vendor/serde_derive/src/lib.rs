//! Vendored offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! plain (non-generic) structs and enums this repository uses, without
//! depending on `syn`/`quote`: the input token stream is walked directly
//! and the generated impl is emitted as source text. The only helper
//! attribute honoured is `#[serde(default)]` on named fields, which makes
//! deserialization fall back to `Default::default()` when the key is
//! absent (all other `#[serde(...)]` forms are ignored).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    /// Whether the field carries `#[serde(default)]`: deserialization
    /// falls back to `Default::default()` when the key is absent.
    default: bool,
}

#[derive(Debug)]
enum FieldsShape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: FieldsShape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: FieldsShape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip `#[...]` attributes (including doc comments, which arrive as
    /// attributes).
    fn skip_attributes(&mut self) {
        let _ = self.take_attributes();
    }

    /// Skip `#[...]` attributes, reporting whether a `#[serde(default)]`
    /// was among them (the single helper attribute this stand-in honours).
    fn take_attributes(&mut self) -> bool {
        let mut has_default = false;
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    if let Some(TokenTree::Group(g)) = self.peek() {
                        has_default |= attribute_is_serde_default(g.stream());
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        has_default
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    /// Skip tokens until a `,` at angle-bracket depth 0, consuming it.
    /// Returns false if the cursor ran out of tokens instead.
    fn skip_until_comma(&mut self) -> bool {
        let mut depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

/// Whether an attribute body (the tokens inside `#[...]`) is
/// `serde(default)`.
fn attribute_is_serde_default(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<String> = g.stream().into_iter().map(|t| t.to_string()).collect();
            inner == ["default"]
        }
        _ => false,
    }
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        let default = c.take_attributes();
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        let name = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        fields.push(Field { name, default });
        if !c.skip_until_comma() {
            break;
        }
    }
    Ok(fields)
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    if c.peek().is_none() {
        return 0;
    }
    let mut count = 1;
    while c.skip_until_comma() {
        if c.peek().is_none() {
            break; // trailing comma
        }
        count += 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident()?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                c.pos += 1;
                FieldsShape::Named(parse_named_fields(stream)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                c.pos += 1;
                FieldsShape::Tuple(count_tuple_fields(stream))
            }
            _ => FieldsShape::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional discriminant and the separating comma.
        if !c.skip_until_comma() {
            break;
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kind = c.expect_ident()?;
    let name = c.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generics on `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    FieldsShape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    FieldsShape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => FieldsShape::Unit,
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}`")),
    }
}

fn serialize_struct_body(fields: &FieldsShape, path: &str) -> String {
    match fields {
        FieldsShape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let n = &f.name;
                pushes.push_str(&format!(
                    "__pairs.push((::std::string::String::from(\"{n}\"), \
                     ::serde::Serialize::to_value(&self.{n})));"
                ));
            }
            format!(
                "{{ let mut __pairs = ::std::vec::Vec::new(); {pushes} \
                 ::serde::Value::Object(__pairs) }}"
            )
        }
        FieldsShape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        FieldsShape::Tuple(n) => {
            let mut pushes = String::new();
            for i in 0..*n {
                pushes.push_str(&format!(
                    "__items.push(::serde::Serialize::to_value(&self.{i}));"
                ));
            }
            format!(
                "{{ let mut __items = ::std::vec::Vec::new(); {pushes} \
                 ::serde::Value::Array(__items) }}"
            )
        }
        FieldsShape::Unit => {
            let _ = path;
            "::serde::Value::Null".to_string()
        }
    }
}

/// The initializer expression for one named field, deserialised from the
/// object bound to `accessor`. `#[serde(default)]` fields fall back to
/// `Default::default()` when the key is absent.
fn named_field_init(field: &Field, accessor: &str) -> String {
    let n = &field.name;
    if field.default {
        format!(
            "{n}: match {accessor}.field(\"{n}\") {{ \
             ::std::result::Result::Ok(__f) => \
             ::serde::Deserialize::from_value(__f)?, \
             ::std::result::Result::Err(_) => \
             ::std::default::Default::default(), }},"
        )
    } else {
        format!("{n}: ::serde::Deserialize::from_value({accessor}.field(\"{n}\")?)?,")
    }
}

fn deserialize_struct_body(fields: &FieldsShape, path: &str) -> String {
    match fields {
        FieldsShape::Named(fields) => {
            let inits: String = fields.iter().map(|f| named_field_init(f, "__v")).collect();
            format!("::std::result::Result::Ok({path} {{ {inits} }})")
        }
        FieldsShape::Tuple(1) => {
            format!("::std::result::Result::Ok({path}(::serde::Deserialize::from_value(__v)?))")
        }
        FieldsShape::Tuple(n) => {
            let mut inits = String::new();
            for i in 0..*n {
                inits.push_str(&format!(
                    "::serde::Deserialize::from_value(__v.item({i})?)?,"
                ));
            }
            format!("::std::result::Result::Ok({path}({inits}))")
        }
        FieldsShape::Unit => format!("::std::result::Result::Ok({path})"),
    }
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = serialize_struct_body(fields, name);
            format!(
                "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    FieldsShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    FieldsShape::Named(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            let f = &f.name;
                            pushes.push_str(&format!(
                                "__inner.push((::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f})));"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ \
                             let mut __inner = ::std::vec::Vec::new(); {pushes} \
                             ::serde::Value::Object(::std::vec::Vec::from([( \
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(__inner))])) }},"
                        ));
                    }
                    FieldsShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let binds_pat = binds.join(", ");
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let mut pushes = String::new();
                            for b in &binds {
                                pushes.push_str(&format!(
                                    "__items.push(::serde::Serialize::to_value({b}));"
                                ));
                            }
                            format!(
                                "{{ let mut __items = ::std::vec::Vec::new(); {pushes} \
                                 ::serde::Value::Array(__items) }}"
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds_pat}) => \
                             ::serde::Value::Object(::std::vec::Vec::from([( \
                             ::std::string::String::from(\"{vn}\"), {payload})])),"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}"
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = deserialize_struct_body(fields, name);
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    FieldsShape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    FieldsShape::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| named_field_init(f, "__payload"))
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),"
                        ));
                    }
                    FieldsShape::Tuple(n) => {
                        let inits = if *n == 1 {
                            "::serde::Deserialize::from_value(__payload)?".to_string()
                        } else {
                            (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__payload.item({i})?)?"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ")
                        };
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({inits})),"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ \
                 match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} \
                 __other => ::std::result::Result::Err(::serde::DeError(::std::format!( \
                 \"unknown variant `{{__other}}` of {name}\"))), }}, \
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                 let (__key, __payload) = &__pairs[0]; \
                 match __key.as_str() {{ {keyed_arms} \
                 __other => ::std::result::Result::Err(::serde::DeError(::std::format!( \
                 \"unknown variant `{{__other}}` of {name}\"))), }} }}, \
                 __other => ::std::result::Result::Err(::serde::DeError(::std::format!( \
                 \"expected {name} variant, got {{__other:?}}\"))), \
                 }} }} }}"
            )
        }
    }
}

fn derive(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            let escaped = msg.replace('\\', "\\\\").replace('"', "\\\"");
            return format!("compile_error!(\"{escaped}\");").parse().unwrap();
        }
    };
    let code = if serialize {
        generate_serialize(&item)
    } else {
        generate_deserialize(&item)
    };
    code.parse().expect("generated impl parses")
}

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive(input, true)
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive(input, false)
}
